package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectNormalize(t *testing.T) {
	r := R(5, 7, 1, 2)
	if r != (Rect{1, 2, 5, 7}) {
		t.Fatalf("R did not normalize: %v", r)
	}
	if !r.Valid() {
		t.Fatal("normalized rect must be valid")
	}
}

func TestRectArea(t *testing.T) {
	cases := []struct {
		r    Rect
		want int64
	}{
		{R(0, 0, 4, 5), 20},
		{R(0, 0, 0, 5), 0},
		{R(-3, -2, 3, 2), 24},
		{Rect{2, 2, 1, 1}, 0}, // invalid ⇒ empty ⇒ zero area
	}
	for _, c := range cases {
		if got := c.r.Area(); got != c.want {
			t.Errorf("Area(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestRectDims(t *testing.T) {
	r := R(0, 0, 3, 7)
	if r.W() != 3 || r.H() != 7 {
		t.Fatalf("W/H = %d/%d, want 3/7", r.W(), r.H())
	}
	if r.MinDim() != 3 || r.MaxDim() != 7 {
		t.Fatalf("MinDim/MaxDim = %d/%d", r.MinDim(), r.MaxDim())
	}
}

func TestIntersectOverlapsTouches(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	x := a.Intersect(b)
	if x != R(5, 5, 10, 10) {
		t.Fatalf("Intersect = %v", x)
	}
	if !a.Overlaps(b) || !a.Touches(b) {
		t.Fatal("a and b overlap")
	}
	c := R(10, 0, 20, 10) // abuts a along x=10
	if a.Overlaps(c) {
		t.Fatal("abutting rects do not overlap")
	}
	if !a.Touches(c) {
		t.Fatal("abutting rects touch")
	}
	d := R(11, 0, 20, 10)
	if a.Touches(d) {
		t.Fatal("separated rects do not touch")
	}
}

func TestExpand(t *testing.T) {
	r := R(2, 2, 4, 4)
	if r.Expand(1) != R(1, 1, 5, 5) {
		t.Fatalf("Expand(1) = %v", r.Expand(1))
	}
	if got := r.Expand(-2); got.Valid() && !got.Empty() {
		t.Fatalf("over-shrunk rect should be empty/invalid: %v", got)
	}
}

func TestGapTo(t *testing.T) {
	a := R(0, 0, 10, 10)
	cases := []struct {
		b      Rect
		dx, dy int
	}{
		{R(13, 0, 20, 10), 3, 0},
		{R(0, 15, 10, 20), 0, 5},
		{R(12, 14, 20, 20), 2, 4},
		{R(5, 5, 6, 6), 0, 0},
		{R(-20, -20, -12, -13), 12, 13},
	}
	for _, c := range cases {
		dx, dy := a.GapTo(c.b)
		if dx != c.dx || dy != c.dy {
			t.Errorf("GapTo(%v) = (%d,%d), want (%d,%d)", c.b, dx, dy, c.dx, c.dy)
		}
	}
}

func TestUnionAreaBasic(t *testing.T) {
	cases := []struct {
		rects []Rect
		want  int64
	}{
		{nil, 0},
		{[]Rect{R(0, 0, 10, 10)}, 100},
		{[]Rect{R(0, 0, 10, 10), R(0, 0, 10, 10)}, 100},                     // identical
		{[]Rect{R(0, 0, 10, 10), R(5, 5, 15, 15)}, 175},                     // overlap 25
		{[]Rect{R(0, 0, 10, 10), R(20, 20, 30, 30)}, 200},                   // disjoint
		{[]Rect{R(0, 0, 10, 10), R(10, 0, 20, 10)}, 200},                    // abutting
		{[]Rect{R(0, 0, 10, 1), R(0, 0, 1, 10), R(9, 0, 10, 10)}, 28},       // L + bar
		{[]Rect{R(0, 0, 4, 4), R(1, 1, 3, 3)}, 16},                          // contained
		{[]Rect{R(0, 0, 0, 10), R(0, 0, 10, 0)}, 0},                         // degenerate
		{[]Rect{R(-5, -5, 5, 5), R(-1, -1, 1, 1), R(0, 0, 6, 6)}, 100 + 11}, // 36-25 extra
	}
	for i, c := range cases {
		if got := UnionArea(c.rects); got != c.want {
			t.Errorf("case %d: UnionArea = %d, want %d", i, got, c.want)
		}
	}
}

// unionAreaBrute computes union area by brute-force unit-cell counting.
func unionAreaBrute(rects []Rect) int64 {
	bb, ok := BoundingBox(rects)
	if !ok {
		return 0
	}
	var area int64
	for x := bb.X0; x < bb.X1; x++ {
		for y := bb.Y0; y < bb.Y1; y++ {
			for _, r := range rects {
				if r.X0 <= x && x < r.X1 && r.Y0 <= y && y < r.Y1 {
					area++
					break
				}
			}
		}
	}
	return area
}

func TestUnionAreaRandomizedAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		rects := make([]Rect, n)
		for i := range rects {
			x, y := rng.Intn(20), rng.Intn(20)
			rects[i] = R(x, y, x+rng.Intn(10), y+rng.Intn(10))
		}
		if got, want := UnionArea(rects), unionAreaBrute(rects); got != want {
			t.Fatalf("trial %d: UnionArea = %d, brute = %d, rects = %v", trial, got, want, rects)
		}
	}
}

func TestUnionAreaProperties(t *testing.T) {
	// Union area is bounded below by the max single area and above by the sum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		rects := make([]Rect, n)
		var sum, maxA int64
		for i := range rects {
			x, y := rng.Intn(1000)-500, rng.Intn(1000)-500
			rects[i] = R(x, y, x+rng.Intn(100), y+rng.Intn(100))
			a := rects[i].Area()
			sum += a
			if a > maxA {
				maxA = a
			}
		}
		u := UnionArea(rects)
		return u >= maxA && u <= sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandMonotonicityProperty(t *testing.T) {
	// Expanding a set never decreases its union area.
	f := func(seed int64, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := int(dRaw % 16)
		n := 1 + rng.Intn(6)
		rects := make([]Rect, n)
		for i := range rects {
			x, y := rng.Intn(100), rng.Intn(100)
			rects[i] = R(x, y, x+rng.Intn(30), y+rng.Intn(30))
		}
		return UnionArea(ExpandSet(rects, d)) >= UnionArea(rects)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectSets(t *testing.T) {
	a := []Rect{R(0, 0, 10, 10), R(20, 0, 30, 10)}
	b := []Rect{R(5, 5, 25, 15)}
	x := IntersectSets(a, b)
	if got := UnionArea(x); got != 25+25 {
		t.Fatalf("intersection area = %d, want 50", got)
	}
	if len(IntersectSets(a, nil)) != 0 {
		t.Fatal("intersection with empty set must be empty")
	}
}

func TestIntersectSetsCommutesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []Rect {
			n := rng.Intn(6)
			rects := make([]Rect, n)
			for i := range rects {
				x, y := rng.Intn(50), rng.Intn(50)
				rects[i] = R(x, y, x+1+rng.Intn(20), y+1+rng.Intn(20))
			}
			return rects
		}
		a, b := mk(), mk()
		return UnionArea(IntersectSets(a, b)) == UnionArea(IntersectSets(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundingBox(t *testing.T) {
	if _, ok := BoundingBox(nil); ok {
		t.Fatal("empty set has no bounding box")
	}
	bb, ok := BoundingBox([]Rect{R(0, 0, 1, 1), R(-5, 3, 2, 9)})
	if !ok || bb != R(-5, 0, 2, 9) {
		t.Fatalf("bb = %v ok=%v", bb, ok)
	}
}

func TestLayerString(t *testing.T) {
	if LayerPoly.String() != "poly" || LayerMetal2.String() != "metal2" {
		t.Fatal("layer names wrong")
	}
	if Layer(200).String() == "" {
		t.Fatal("unknown layer must stringify")
	}
}

func TestLayerConducting(t *testing.T) {
	conducting := map[Layer]bool{
		LayerNWell: false, LayerPDiff: true, LayerNDiff: true, LayerPoly: true,
		LayerContact: false, LayerMetal1: true, LayerVia: false, LayerMetal2: true,
	}
	for l, want := range conducting {
		if got := l.Conducting(); got != want {
			t.Errorf("%v.Conducting() = %v, want %v", l, got, want)
		}
	}
}

func TestDisjointSet(t *testing.T) {
	d := NewDisjointSet(6)
	if !d.Union(0, 1) || !d.Union(1, 2) {
		t.Fatal("first unions must merge")
	}
	if d.Union(0, 2) {
		t.Fatal("already merged")
	}
	d.Union(3, 4)
	comp, n := d.Components()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("0,1,2 must share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("component labels wrong")
	}
}

func TestConnectTouching(t *testing.T) {
	rects := []Rect{
		R(0, 0, 10, 2),  // 0
		R(10, 0, 20, 2), // 1 abuts 0
		R(19, 0, 30, 2), // 2 overlaps 1
		R(40, 0, 50, 2), // 3 isolated
		R(45, 2, 46, 9), // 4 abuts 3 (shares boundary y=2)
	}
	d := NewDisjointSet(len(rects))
	idx := []int{0, 1, 2, 3, 4}
	ConnectTouching(d, idx, rects)
	if d.Find(0) != d.Find(2) {
		t.Fatal("0..2 must connect")
	}
	if d.Find(0) == d.Find(3) {
		t.Fatal("3 must stay isolated from 0")
	}
	if d.Find(3) != d.Find(4) {
		t.Fatal("3 and 4 abut")
	}
}

func TestShapeSet(t *testing.T) {
	var s ShapeSet
	s.Add(LayerMetal1, R(0, 0, 4, 1))
	s.AddNet(LayerMetal1, R(0, 2, 4, 3), 7)
	s.AddNet(LayerPoly, R(0, 0, 1, 8), 7)
	if got := len(s.OnLayer(LayerMetal1)); got != 2 {
		t.Fatalf("OnLayer(metal1) = %d shapes", got)
	}
	ns := s.NetShapes(LayerMetal1)
	if len(ns) != 1 || len(ns[7]) != 1 {
		t.Fatalf("NetShapes wrong: %v", ns)
	}
	bb, ok := s.Bounds()
	if !ok || bb != R(0, 0, 4, 8) {
		t.Fatalf("Bounds = %v", bb)
	}

	var dst ShapeSet
	dst.Append(&s, 10, 20, func(n int) int {
		if n < 0 {
			return -1
		}
		return n + 100
	})
	if dst.Shapes[1].Net != 107 || dst.Shapes[1].Rect != R(10, 22, 14, 23) {
		t.Fatalf("Append remap/translate wrong: %+v", dst.Shapes[1])
	}
	if dst.Shapes[0].Net != -1 {
		t.Fatal("unassigned net must stay -1")
	}
}

func BenchmarkUnionArea(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rects := make([]Rect, 200)
	for i := range rects {
		x, y := rng.Intn(1000), rng.Intn(1000)
		rects[i] = R(x, y, x+rng.Intn(50), y+rng.Intn(50))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnionArea(rects)
	}
}
