package cell

import (
	"fmt"
	"testing"

	"defectsim/internal/geom"
	"defectsim/internal/netlist"
)

func allCells(t *testing.T) []*Cell {
	t.Helper()
	var cells []*Cell
	add := func(gt netlist.GateType, fanin int) {
		c, err := Build(gt, fanin)
		if err != nil {
			t.Fatalf("Build(%v,%d): %v", gt, fanin, err)
		}
		cells = append(cells, c)
	}
	add(netlist.Not, 1)
	add(netlist.Buf, 1)
	for _, gt := range []netlist.GateType{netlist.Nand, netlist.Nor, netlist.And, netlist.Or} {
		for k := 2; k <= 4; k++ {
			add(gt, k)
		}
	}
	add(netlist.Xor, 2)
	add(netlist.Xnor, 2)
	return cells
}

func TestBuildRejectsBadFanin(t *testing.T) {
	bad := []struct {
		gt netlist.GateType
		k  int
	}{
		{netlist.Not, 2}, {netlist.Buf, 0}, {netlist.Nand, 1}, {netlist.Nand, 5},
		{netlist.Xor, 3}, {netlist.Xnor, 1}, {netlist.And, 1}, {netlist.Or, 9},
	}
	for _, b := range bad {
		if _, err := Build(b.gt, b.k); err == nil {
			t.Errorf("Build(%v,%d) must fail", b.gt, b.k)
		}
	}
}

func TestTransistorCounts(t *testing.T) {
	want := map[string]int{
		"NOT1": 2, "BUF1": 4,
		"NAND2": 4, "NAND3": 6, "NAND4": 8,
		"NOR2": 4, "NOR3": 6, "NOR4": 8,
		"AND2": 6, "AND3": 8, "AND4": 10,
		"OR2": 6, "OR3": 8, "OR4": 10,
		"XOR2": 16, "XNOR2": 16,
	}
	for _, c := range allCells(t) {
		if got := len(c.Transistors); got != want[c.Name] {
			t.Errorf("%s: %d transistors, want %d", c.Name, got, want[c.Name])
		}
	}
}

func TestComplementaryStructure(t *testing.T) {
	// Equal numbers of NMOS and PMOS, every gate node is an input or an
	// internal stage net, and widths are positive.
	for _, c := range allCells(t) {
		var n, p int
		for _, tr := range c.Transistors {
			if tr.Type == NMOS {
				n++
			} else {
				p++
			}
			if tr.Width <= 0 || tr.Length <= 0 {
				t.Errorf("%s: nonpositive device geometry %+v", c.Name, tr)
			}
			if tr.Gate < 2 || tr.Gate >= c.NumNodes() {
				t.Errorf("%s: bad gate node %d", c.Name, tr.Gate)
			}
			if tr.Gate == NodeGND || tr.Gate == NodeVDD {
				t.Errorf("%s: gate tied to rail", c.Name)
			}
		}
		if n != p {
			t.Errorf("%s: %d NMOS vs %d PMOS", c.Name, n, p)
		}
	}
}

func TestEveryInputHasPinAndPoly(t *testing.T) {
	for _, c := range allCells(t) {
		for i, in := range c.Inputs {
			var pins, poly int
			for _, p := range c.Pins {
				if p.Node == in {
					pins++
				}
			}
			for _, sh := range c.Shapes.Shapes {
				if sh.Layer == geom.LayerPoly && sh.Net == in {
					poly++
				}
			}
			if pins == 0 {
				t.Errorf("%s: input %d has no pin", c.Name, i)
			}
			if poly == 0 {
				t.Errorf("%s: input %d has no poly gate stripe", c.Name, i)
			}
		}
	}
}

func TestOutputHasBothSidePads(t *testing.T) {
	for _, c := range allCells(t) {
		var nSide, pSide int
		for _, p := range c.Pins {
			if p.Node != c.Output {
				continue
			}
			switch {
			case p.Pad.Y0 >= NPadY0 && p.Pad.Y1 <= NPadY1:
				nSide++
			case p.Pad.Y0 >= PPadY0 && p.Pad.Y1 <= PPadY1:
				pSide++
			}
		}
		if nSide == 0 || pSide == 0 {
			t.Errorf("%s: output pads n=%d p=%d (need both sides)", c.Name, nSide, pSide)
		}
	}
}

// TestNoIntraCellShorts checks that no two same-layer conducting shapes
// tagged with different nets touch — the cell-level DRC that guarantees the
// generated masks realize the intended connectivity.
func TestNoIntraCellShorts(t *testing.T) {
	for _, c := range allCells(t) {
		for i, a := range c.Shapes.Shapes {
			if a.Net < 0 || !a.Layer.Conducting() {
				continue
			}
			for _, b := range c.Shapes.Shapes[i+1:] {
				if b.Net < 0 || b.Layer != a.Layer || b.Net == a.Net {
					continue
				}
				if a.Rect.Touches(b.Rect) {
					t.Errorf("%s: %v short between node %s and %s at %v/%v",
						c.Name, a.Layer, c.NodeNames[a.Net], c.NodeNames[b.Net], a.Rect, b.Rect)
				}
			}
		}
	}
}

// TestIntraCellConnectivity verifies that, per conducting layer plus
// contacts, the shapes of each node form components consistent with their
// tags: connected shapes never carry different tags (no hidden merges
// through the contact stack either).
func TestIntraCellConnectivity(t *testing.T) {
	for _, c := range allCells(t) {
		shapes := c.Shapes.Shapes
		ds := geom.NewDisjointSet(len(shapes))
		for i, a := range shapes {
			for j := i + 1; j < len(shapes); j++ {
				b := shapes[j]
				if !a.Rect.Touches(b.Rect) {
					continue
				}
				connected := false
				switch {
				case a.Layer == b.Layer && a.Layer.Conducting():
					connected = true
				case a.Layer == geom.LayerContact &&
					(b.Layer == geom.LayerPoly || b.Layer == geom.LayerMetal1 ||
						b.Layer == geom.LayerNDiff || b.Layer == geom.LayerPDiff):
					connected = true
				case b.Layer == geom.LayerContact &&
					(a.Layer == geom.LayerPoly || a.Layer == geom.LayerMetal1 ||
						a.Layer == geom.LayerNDiff || a.Layer == geom.LayerPDiff):
					connected = true
				case a.Layer == geom.LayerVia && (b.Layer == geom.LayerMetal1 || b.Layer == geom.LayerMetal2):
					connected = true
				case b.Layer == geom.LayerVia && (a.Layer == geom.LayerMetal1 || a.Layer == geom.LayerMetal2):
					connected = true
				}
				if !connected {
					continue
				}
				// Untagged shapes (wells, channels) do not conduct between nets.
				if a.Net < 0 || b.Net < 0 {
					continue
				}
				ds.Union(i, j)
			}
		}
		for i, a := range shapes {
			for j := i + 1; j < len(shapes); j++ {
				b := shapes[j]
				if a.Net >= 0 && b.Net >= 0 && a.Net != b.Net && ds.Find(i) == ds.Find(j) {
					t.Fatalf("%s: nodes %s and %s merged by geometry",
						c.Name, c.NodeNames[a.Net], c.NodeNames[b.Net])
				}
			}
		}
	}
}

func TestCellDimensions(t *testing.T) {
	for _, c := range allCells(t) {
		if c.Width <= 0 {
			t.Errorf("%s: nonpositive width", c.Name)
		}
		bb, ok := c.Shapes.Bounds()
		if !ok {
			t.Fatalf("%s: no shapes", c.Name)
		}
		if bb.Y0 < 0 || bb.Y1 > CellHeight {
			t.Errorf("%s: geometry leaves the cell vertically: %v", c.Name, bb)
		}
		if bb.X0 < 0 || bb.X1 > c.Width {
			t.Errorf("%s: geometry leaves the cell horizontally: %v (width %d)", c.Name, bb, c.Width)
		}
		// Rails span the full width on metal1.
		var gnd, vdd bool
		for _, sh := range c.Shapes.Shapes {
			if sh.Layer != geom.LayerMetal1 {
				continue
			}
			if sh.Net == NodeGND && sh.Rect.X0 == 0 && sh.Rect.X1 == c.Width && sh.Rect.Y0 == 0 {
				gnd = true
			}
			if sh.Net == NodeVDD && sh.Rect.X0 == 0 && sh.Rect.X1 == c.Width && sh.Rect.Y1 == CellHeight {
				vdd = true
			}
		}
		if !gnd || !vdd {
			t.Errorf("%s: missing full-width rails (gnd=%v vdd=%v)", c.Name, gnd, vdd)
		}
	}
}

func TestPinsInsidePinBands(t *testing.T) {
	for _, c := range allCells(t) {
		for _, p := range c.Pins {
			y0, y1 := p.Pad.Y0, p.Pad.Y1
			inBand := (y0 >= NPadY0 && y1 <= NPadY1) ||
				(y0 >= InPadY0 && y1 <= InPadY1) ||
				(y0 >= PPadY0 && y1 <= PPadY1)
			if !inBand {
				t.Errorf("%s: pin pad %v outside pin bands", c.Name, p.Pad)
			}
		}
	}
}

func TestMOSTypeString(t *testing.T) {
	if NMOS.String() != "nmos" || PMOS.String() != "pmos" {
		t.Fatal("MOSType strings")
	}
}

func TestNodeNamesUnique(t *testing.T) {
	for _, c := range allCells(t) {
		seen := map[string]bool{}
		for _, nm := range c.NodeNames {
			key := fmt.Sprintf("%s", nm)
			if seen[key] {
				t.Errorf("%s: duplicate node name %s", c.Name, nm)
			}
			seen[key] = true
		}
	}
}
