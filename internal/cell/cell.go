// Package cell provides a scalable-λ CMOS standard-cell library: for every
// gate type of the netlist package it supplies a Cell carrying both a
// transistor-level description and generated rectilinear mask geometry.
//
// Cells are built from primitive complementary *stages* — INV, NAND-k and
// NOR-k — the only structures static CMOS realizes in a single stage.
// Non-inverting and XOR-class gates become multi-stage cells:
//
//	BUF  = INV·INV          AND-k = NAND-k·INV    OR-k = NOR-k·INV
//	XOR2 = NAND2 ladder (4 stages)    XNOR2 = NOR2 ladder (4 stages)
//
// Stage geometry follows a fixed template (dimensions in λ):
//
//	y 0..5    GND rail (metal1, full cell width)
//	y 8..14   n-diffusion strip
//	y 14..17  n-side signal pads (metal1)
//	y 19..22  gate-input pads (metal1 over poly contact)
//	y 25..28  p-side signal pads (metal1)
//	y 30..38  p-diffusion strip (inside n-well)
//	y 41..46  VDD rail (metal1, full cell width)
//
// Poly gate stripes run vertically (y 6..40) at 8λ pitch. Series devices
// share diffusion with contacts only at the strip ends; parallel devices get
// alternating rail/output contacts in every slot. Intra-cell stage-to-stage
// nets are exposed as pins and closed by the global router (see package
// layout), exactly like ordinary signal nets.
package cell

import (
	"fmt"

	"defectsim/internal/geom"
	"defectsim/internal/netlist"
)

// Template dimensions in λ. Exported so layout and tests agree on geometry.
const (
	CellHeight  = 46 // total cell height including both rails
	RailH       = 5  // power-rail height (GND at bottom, VDD at top)
	NDiffY0     = 8  // n-diffusion strip
	NDiffY1     = 14
	PDiffY0     = 30 // p-diffusion strip
	PDiffY1     = 38
	PolyY0      = 6 // gate poly stripe vertical extent
	PolyY1      = 40
	PolyW       = 2  // poly stripe width
	PolyPitch   = 8  // gate stripe pitch
	ContactSize = 2  // contact/via cut edge
	NPadY0      = 14 // n-side output pad band (metal1)
	NPadY1      = 17
	InPadY0     = 19 // gate-input pad band (metal1)
	InPadY1     = 22
	PPadY0      = 25 // p-side output pad band (metal1)
	PPadY1      = 28
)

// MOSType distinguishes n-channel from p-channel devices.
type MOSType uint8

// Device polarities.
const (
	NMOS MOSType = iota
	PMOS
)

// String returns "nmos" or "pmos".
func (m MOSType) String() string {
	if m == NMOS {
		return "nmos"
	}
	return "pmos"
}

// Transistor is one MOS device of a cell, with terminals referring to
// cell-local node indices. Width is the drawn channel width in λ, used by
// the switch-level simulator as the drive-strength proxy.
type Transistor struct {
	Type          MOSType
	Gate          int // controlling node
	Source, Drain int // channel terminals (interchangeable)
	Width         int // channel width in λ
	Length        int // channel length in λ
}

// Reserved cell-local node indices. Additional nodes (inputs, internal
// stage nets, output) are allocated after these.
const (
	NodeGND = 0
	NodeVDD = 1
)

// Pin is a router connection point of a cell: an M1 pad belonging to a
// cell-local node.
type Pin struct {
	Node int
	Pad  geom.Rect // metal1 pad, cell-local coordinates
}

// Cell is a standard cell: its logical function, transistor netlist, mask
// geometry and router pins. Geometry shapes are tagged with cell-local node
// indices (in Shape.Net); instantiation remaps them to global nets.
type Cell struct {
	Name      string
	Type      netlist.GateType
	NumInputs int

	// Node bookkeeping: 0=GND, 1=VDD, 2..2+NumInputs-1 = inputs A,B,...,
	// then internal nodes, and Output last.
	NodeNames []string
	Inputs    []int // node indices of the logical inputs, in order
	Output    int   // node index of the logical output

	Transistors []Transistor
	Shapes      geom.ShapeSet
	Pins        []Pin
	Width       int // cell width in λ
}

// NumNodes returns the number of cell-local nodes.
func (c *Cell) NumNodes() int { return len(c.NodeNames) }

// stageKind enumerates the primitive complementary stages.
type stageKind uint8

const (
	stInv stageKind = iota
	stNand
	stNor
)

type stageSpec struct {
	kind   stageKind
	inputs []int // node indices feeding the stage's gates
	out    int   // node index the stage drives
}

// decompose returns the stage sequence realizing gate type t with the given
// fan-in, allocating internal node indices via newNode.
func decompose(t netlist.GateType, in []int, out int, newNode func(string) int) []stageSpec {
	switch t {
	case netlist.Not:
		return []stageSpec{{stInv, in, out}}
	case netlist.Buf:
		m := newNode("bufmid")
		return []stageSpec{{stInv, in, m}, {stInv, []int{m}, out}}
	case netlist.Nand:
		return []stageSpec{{stNand, in, out}}
	case netlist.Nor:
		return []stageSpec{{stNor, in, out}}
	case netlist.And:
		m := newNode("nandmid")
		return []stageSpec{{stNand, in, m}, {stInv, []int{m}, out}}
	case netlist.Or:
		m := newNode("normid")
		return []stageSpec{{stNor, in, m}, {stInv, []int{m}, out}}
	case netlist.Xor:
		// s1 = NAND(a,b); s2 = NAND(a,s1); s3 = NAND(b,s1); out = NAND(s2,s3).
		if len(in) != 2 {
			panic("cell: XOR cells are 2-input")
		}
		s1, s2, s3 := newNode("x1"), newNode("x2"), newNode("x3")
		return []stageSpec{
			{stNand, []int{in[0], in[1]}, s1},
			{stNand, []int{in[0], s1}, s2},
			{stNand, []int{in[1], s1}, s3},
			{stNand, []int{s2, s3}, out},
		}
	case netlist.Xnor:
		// Dual ladder in NOR realizes XNOR.
		if len(in) != 2 {
			panic("cell: XNOR cells are 2-input")
		}
		s1, s2, s3 := newNode("x1"), newNode("x2"), newNode("x3")
		return []stageSpec{
			{stNor, []int{in[0], in[1]}, s1},
			{stNor, []int{in[0], s1}, s2},
			{stNor, []int{in[1], s1}, s3},
			{stNor, []int{s2, s3}, out},
		}
	}
	panic(fmt.Sprintf("cell: no decomposition for %v", t))
}

// Build constructs the standard cell realizing gate type t with fanin
// inputs. Supported fan-ins: 1 for NOT/BUF, 2–4 for NAND/NOR/AND/OR, exactly
// 2 for XOR/XNOR.
func Build(t netlist.GateType, fanin int) (*Cell, error) {
	switch t {
	case netlist.Not, netlist.Buf:
		if fanin != 1 {
			return nil, fmt.Errorf("cell: %v takes 1 input, got %d", t, fanin)
		}
	case netlist.Xor, netlist.Xnor:
		if fanin != 2 {
			return nil, fmt.Errorf("cell: %v takes 2 inputs, got %d", t, fanin)
		}
	default:
		if fanin < 2 || fanin > 4 {
			return nil, fmt.Errorf("cell: %v fan-in %d outside [2,4]", t, fanin)
		}
	}
	c := &Cell{
		Name:      fmt.Sprintf("%s%d", t, fanin),
		Type:      t,
		NumInputs: fanin,
		NodeNames: []string{"GND", "VDD"},
	}
	for i := 0; i < fanin; i++ {
		c.Inputs = append(c.Inputs, c.newNode(fmt.Sprintf("%c", 'A'+i)))
	}
	c.Output = c.newNode("Y")
	stages := decompose(t, c.Inputs, c.Output, c.newNode)

	x := 0
	for _, st := range stages {
		x = c.buildStage(st, x)
	}
	c.Width = x
	// Power rails across the full cell width.
	c.Shapes.AddNet(geom.LayerMetal1, geom.R(0, 0, c.Width, RailH), NodeGND)
	c.Shapes.AddNet(geom.LayerMetal1, geom.R(0, CellHeight-RailH, c.Width, CellHeight), NodeVDD)
	// N-well under the PMOS region.
	c.Shapes.AddNet(geom.LayerNWell, geom.R(0, PDiffY0-4, c.Width, CellHeight), -1)
	return c, nil
}

func (c *Cell) newNode(name string) int {
	c.NodeNames = append(c.NodeNames, name)
	return len(c.NodeNames) - 1
}

// buildStage emits the geometry and transistors of one complementary stage
// starting at cell-local x offset x0 and returns the x offset after it.
func (c *Cell) buildStage(st stageSpec, x0 int) int {
	k := len(st.inputs)
	w := PolyPitch*k + 6 // slot, k stripes at pitch 8, final slot

	// Gate poly stripes and input pads.
	stripeX := make([]int, k)
	for i := 0; i < k; i++ {
		sx := x0 + 6 + PolyPitch*i
		stripeX[i] = sx
		c.Shapes.AddNet(geom.LayerPoly, geom.R(sx, PolyY0, sx+PolyW, PolyY1), st.inputs[i])
		// Poly→metal1 contact and input pad in the middle band.
		c.Shapes.AddNet(geom.LayerContact,
			geom.R(sx, InPadY0+1, sx+ContactSize, InPadY0+1+ContactSize), st.inputs[i])
		pad := geom.R(sx-1, InPadY0, sx+PolyW+1, InPadY1)
		c.Shapes.AddNet(geom.LayerMetal1, pad, st.inputs[i])
		c.Pins = append(c.Pins, Pin{st.inputs[i], pad})
	}

	// Transistors: NMOS bottom, PMOS top. Series on one side, parallel on
	// the other, per stage kind.
	nSeries := st.kind == stNand // NAND: NMOS series, PMOS parallel
	pSeries := st.kind == stNor  // NOR: PMOS series, NMOS parallel
	if st.kind == stInv {
		nSeries, pSeries = true, true // single device: series == parallel
	}
	nNodes := c.chainNodes(k, nSeries, NodeGND, st.out)
	pNodes := c.chainNodes(k, pSeries, NodeVDD, st.out)
	for i := 0; i < k; i++ {
		c.Transistors = append(c.Transistors,
			Transistor{NMOS, st.inputs[i], nNodes[i], nNodes[i+1], NDiffY1 - NDiffY0, PolyW},
			Transistor{PMOS, st.inputs[i], pNodes[i], pNodes[i+1], PDiffY1 - PDiffY0, PolyW},
		)
	}
	c.emitDiffChain(x0, w, k, stripeX, nNodes, st.out, false)
	c.emitDiffChain(x0, w, k, stripeX, pNodes, st.out, true)
	return x0 + w
}

// chainNodes returns the k+1 source/drain node chain of a k-device stack.
// Series: rail, internal nodes, out. Parallel: alternating rail/out so every
// device sits between the rail and the output.
func (c *Cell) chainNodes(k int, series bool, rail, out int) []int {
	nodes := make([]int, k+1)
	if series {
		nodes[0] = rail
		for i := 1; i < k; i++ {
			nodes[i] = c.newNode(fmt.Sprintf("m%d", len(c.NodeNames)))
		}
		nodes[k] = out
		return nodes
	}
	for i := range nodes {
		if i%2 == 0 {
			nodes[i] = rail
		} else {
			nodes[i] = out
		}
	}
	return nodes
}

// emitDiffChain places the diffusion source/drain segments, the channel
// regions under the gate stripes, and the contacts/metal of one device
// chain. Slot segments are tagged with their chain node; channel regions
// are untagged (they belong to no single net). Rail nodes strap to the
// rail; the stage output gets a signal pad pin; internal series nodes stay
// contact-free (shared diffusion).
func (c *Cell) emitDiffChain(x0, w, k int, stripeX, nodes []int, out int, pmos bool) {
	layer := geom.LayerNDiff
	diffY0, diffY1 := NDiffY0, NDiffY1
	if pmos {
		layer = geom.LayerPDiff
		diffY0, diffY1 = PDiffY0, PDiffY1
	}
	cy := (diffY0 + diffY1) / 2
	for slot := 0; slot <= k; slot++ {
		node := nodes[slot]
		// Slot segment extents.
		segX0 := x0 + 1
		if slot > 0 {
			segX0 = stripeX[slot-1] + PolyW
		}
		segX1 := x0 + w - 1
		if slot < k {
			segX1 = stripeX[slot]
		}
		c.Shapes.AddNet(layer, geom.R(segX0, diffY0, segX1, diffY1), node)

		if node >= 2 && node != NodeGND && node != NodeVDD && node != out {
			continue // internal series diffusion: no contact
		}
		cx := segX0 + (segX1-segX0-ContactSize)/2
		c.Shapes.AddNet(geom.LayerContact, geom.R(cx, cy-1, cx+ContactSize, cy+1), node)
		switch {
		case node == NodeGND:
			c.Shapes.AddNet(geom.LayerMetal1, geom.R(cx-1, 0, cx+ContactSize+1, cy+1), node)
		case node == NodeVDD:
			c.Shapes.AddNet(geom.LayerMetal1, geom.R(cx-1, cy-1, cx+ContactSize+1, CellHeight), node)
		case !pmos:
			pad := geom.R(cx-1, NPadY0, cx+ContactSize+1, NPadY1)
			c.Shapes.AddNet(geom.LayerMetal1, geom.R(cx-1, cy-1, cx+ContactSize+1, NPadY1), node)
			c.Pins = append(c.Pins, Pin{node, pad})
		default:
			pad := geom.R(cx-1, PPadY0, cx+ContactSize+1, PPadY1)
			c.Shapes.AddNet(geom.LayerMetal1, geom.R(cx-1, PPadY0, cx+ContactSize+1, cy+1), node)
			c.Pins = append(c.Pins, Pin{node, pad})
		}
	}
	// Channel regions under the gate stripes (no net: they separate slots).
	for i := 0; i < k; i++ {
		c.Shapes.AddNet(layer, geom.R(stripeX[i], diffY0, stripeX[i]+PolyW, diffY1), -1)
	}
}
