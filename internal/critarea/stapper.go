package critarea

import "defectsim/internal/defect"

// Closed-form critical areas for regular structures (Stapper's formulas),
// useful both as fast estimators during floorplanning — before any layout
// exists — and as independent references the exact geometric engine is
// tested against.

// ParallelWiresShortArea returns the critical area for shorting two
// parallel wires of length l and spacing s with a square defect of side x:
//
//	A(x) = 0              for x ≤ s
//	A(x) = (l + x)(x − s) for x > s
//
// (the dilated overlap band of height x−s extends x/2 beyond both wire
// ends). This matches the exact expand-and-intersect computation for the
// two-rectangle case.
func ParallelWiresShortArea(l, s int, x int) float64 {
	if x <= s {
		return 0
	}
	return float64(l+x) * float64(x-s)
}

// WireOpenArea returns the closed-form critical area for severing a wire
// of length l and width w: A(x) = l·(x−w) for x > w (first-order band
// model, end effects ignored) — identical to OpenArea on one rectangle.
func WireOpenArea(l, w int, x int) float64 {
	if x <= w {
		return 0
	}
	return float64(l) * float64(x-w)
}

// WireArrayShortAreaPerTrack returns the average short critical area per
// adjacent wire pair in an infinite array of parallel wires (width w,
// spacing s, overlap length l), integrated over the defect-size
// distribution: the building block of pre-layout yield estimates for
// routing channels. Defects large enough to span several pitches still
// count once per adjacent pair (multi-wire shorts are dominated by the
// nearest-neighbour term under the 1/x³ tail).
func WireArrayShortAreaPerTrack(l, w, s int, dist defect.SizeDist, maxSize int) float64 {
	return Average(dist, maxSize, func(x int) float64 {
		return ParallelWiresShortArea(l, s, x)
	})
}

// EstimateChannelShortWeight estimates the total expected short count of a
// routing channel with nTracks tracks of the given geometry and an
// extra-material defect density (per 10⁶ λ²): (nTracks−1) adjacent pairs
// times the per-pair average critical area times the density.
func EstimateChannelShortWeight(nTracks, l, w, s int, dist defect.SizeDist, density float64, maxSize int) float64 {
	if nTracks < 2 {
		return 0
	}
	perPair := WireArrayShortAreaPerTrack(l, w, s, dist, maxSize)
	return float64(nTracks-1) * perPair * density * 1e-6
}
