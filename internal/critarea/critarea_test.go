package critarea

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"defectsim/internal/defect"
	"defectsim/internal/geom"
)

func TestShortAreaParallelWires(t *testing.T) {
	// Two parallel horizontal wires, width 2, length 100, spacing s = 4.
	// A square defect of side x shorts them iff x > s; the critical region
	// is then a band of height (x − s) over the common run minus/plus end
	// effects: dilating each wire by x/2 gives overlap height (x − s) and
	// width 100 + x (both ends extend by x/2). Exact expected area:
	// (100 + x)·(x − s).
	a := []geom.Rect{geom.R(0, 0, 100, 2)}
	b := []geom.Rect{geom.R(0, 6, 100, 8)}
	const s = 4
	for _, x := range []int{1, 2, 3, 4} {
		if got := ShortArea(a, b, x); got != 0 {
			t.Errorf("x=%d ≤ spacing must give 0, got %g", x, got)
		}
	}
	for _, x := range []int{5, 6, 8, 12} {
		want := float64(100+x) * float64(x-s)
		if got := ShortArea(a, b, x); math.Abs(got-want) > 1e-9 {
			t.Errorf("x=%d: ShortArea = %g, want %g", x, got, want)
		}
	}
}

func TestShortAreaOddSizesExact(t *testing.T) {
	// Half-λ scaling must make odd sizes exact, not rounded: two unit
	// squares with gap 1 and size 3 → each dilated by 1.5.
	a := []geom.Rect{geom.R(0, 0, 2, 2)}
	b := []geom.Rect{geom.R(3, 0, 5, 2)}
	// Dilated: a' = [-1.5,3.5]×[-1.5,3.5], b' = [1.5,6.5]×[-1.5,3.5];
	// overlap = 2×5 = 10.
	if got := ShortArea(a, b, 3); math.Abs(got-10) > 1e-9 {
		t.Fatalf("ShortArea odd = %g, want 10", got)
	}
}

func TestShortAreaEmptyAndZero(t *testing.T) {
	a := []geom.Rect{geom.R(0, 0, 10, 2)}
	if ShortArea(nil, a, 5) != 0 || ShortArea(a, nil, 5) != 0 || ShortArea(a, a, 0) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
}

func TestShortAreaMonotoneInSizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []geom.Rect {
			n := 1 + rng.Intn(4)
			rs := make([]geom.Rect, n)
			for i := range rs {
				x, y := rng.Intn(60), rng.Intn(60)
				rs[i] = geom.R(x, y, x+1+rng.Intn(20), y+1+rng.Intn(6))
			}
			return rs
		}
		a, b := mk(), mk()
		prev := -1.0
		for x := 1; x <= 16; x++ {
			cur := ShortArea(a, b, x)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenArea(t *testing.T) {
	wire := []geom.Rect{geom.R(0, 0, 50, 2)} // width 2, length 50
	if OpenArea(wire, 2) != 0 {
		t.Fatal("defect ≤ width cannot sever")
	}
	if got := OpenArea(wire, 5); got != 50*3 {
		t.Fatalf("OpenArea = %g, want 150", got)
	}
	two := append(wire, geom.R(0, 10, 10, 14)) // width 4, length 10
	if got := OpenArea(two, 6); got != 50*4+10*2 {
		t.Fatalf("OpenArea two wires = %g", got)
	}
	if OpenArea(nil, 10) != 0 || OpenArea(wire, 0) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestCutOpenArea(t *testing.T) {
	cuts := []geom.Rect{geom.R(0, 0, 2, 2), geom.R(10, 10, 12, 12)}
	if CutOpenArea(cuts, 1) != 0 {
		t.Fatal("defect smaller than cut cannot kill it")
	}
	if got := CutOpenArea(cuts, 2); got != 8 {
		t.Fatalf("CutOpenArea = %g, want 8", got)
	}
}

func TestAverageIntegration(t *testing.T) {
	dist := defect.SizeDist{X0: 2}
	// Constant A(x) = 1: average = Σ f(x) ≈ ∫f ≈ CDF(max) mass sampled at
	// integers — just require it to be positive and below 1.2.
	avg := Average(dist, 30, func(int) float64 { return 1 })
	if avg <= 0.5 || avg > 1.2 {
		t.Fatalf("Average of constant 1 = %g, implausible", avg)
	}
}

func TestAvgShortLessThanMaxSize(t *testing.T) {
	dist := defect.SizeDist{X0: 2}
	a := []geom.Rect{geom.R(0, 0, 100, 2)}
	b := []geom.Rect{geom.R(0, 5, 100, 7)}
	avg := AvgShortArea(a, b, dist, 24)
	if avg <= 0 {
		t.Fatal("parallel wires must have positive short critical area")
	}
	// Wires twice as far apart must have a much smaller critical area.
	c := []geom.Rect{geom.R(0, 11, 100, 13)}
	avgFar := AvgShortArea(a, c, dist, 24)
	if avgFar >= avg/2 {
		t.Fatalf("critical area must fall steeply with spacing: near %g far %g", avg, avgFar)
	}
}

func TestAvgOpenNarrowVsWide(t *testing.T) {
	dist := defect.SizeDist{X0: 2}
	narrow := AvgOpenArea([]geom.Rect{geom.R(0, 0, 100, 2)}, dist, 24)
	wide := AvgOpenArea([]geom.Rect{geom.R(0, 0, 100, 6)}, dist, 24)
	if narrow <= wide {
		t.Fatalf("narrow wires must be more open-prone: narrow %g wide %g", narrow, wide)
	}
}

func TestAvgCutOpenArea(t *testing.T) {
	dist := defect.SizeDist{X0: 2}
	one := AvgCutOpenArea([]geom.Rect{geom.R(0, 0, 2, 2)}, dist, 24)
	two := AvgCutOpenArea([]geom.Rect{geom.R(0, 0, 2, 2), geom.R(8, 0, 10, 2)}, dist, 24)
	if one <= 0 || math.Abs(two-2*one) > 1e-9 {
		t.Fatalf("cut weights must add: one %g two %g", one, two)
	}
}

func TestMinShortingSize(t *testing.T) {
	a := []geom.Rect{geom.R(0, 0, 10, 2)}
	b := []geom.Rect{geom.R(0, 6, 10, 8)} // gap 4
	if got := MinShortingSize(a, b, 24); got != 5 {
		t.Fatalf("MinShortingSize = %d, want 5", got)
	}
	far := []geom.Rect{geom.R(0, 1000, 10, 1002)}
	if got := MinShortingSize(a, far, 24); got != 25 {
		t.Fatalf("unreachable pair must return maxSize+1, got %d", got)
	}
	// Consistency with ShortArea: area is zero below the threshold and
	// positive at it.
	th := MinShortingSize(a, b, 24)
	if ShortArea(a, b, th-1) != 0 {
		t.Fatal("area below threshold must be 0")
	}
	if ShortArea(a, b, th) <= 0 {
		t.Fatal("area at threshold must be positive")
	}
}

func TestMinShortingSizeConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []geom.Rect {
			x, y := rng.Intn(40), rng.Intn(40)
			return []geom.Rect{geom.R(x, y, x+1+rng.Intn(10), y+1+rng.Intn(10))}
		}
		a, b := mk(), mk()
		th := MinShortingSize(a, b, 30)
		if th > 30 {
			return ShortArea(a, b, 30) == 0
		}
		return ShortArea(a, b, th) > 0 && (th == 1 || ShortArea(a, b, th-1) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
