package critarea

import (
	"math"
	"testing"

	"defectsim/internal/defect"
	"defectsim/internal/geom"
)

func TestParallelWiresClosedFormMatchesExact(t *testing.T) {
	const l, w, s = 80, 2, 4
	a := []geom.Rect{geom.R(0, 0, l, w)}
	b := []geom.Rect{geom.R(0, w+s, l, 2*w+s)}
	for x := 1; x <= 20; x++ {
		exact := ShortArea(a, b, x)
		closed := ParallelWiresShortArea(l, s, x)
		if math.Abs(exact-closed) > 1e-9 {
			t.Fatalf("x=%d: exact %g vs closed form %g", x, exact, closed)
		}
	}
}

func TestWireOpenClosedFormMatchesExact(t *testing.T) {
	const l, w = 60, 3
	wire := []geom.Rect{geom.R(0, 0, l, w)}
	for x := 1; x <= 16; x++ {
		if got, want := OpenArea(wire, x), WireOpenArea(l, w, x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("x=%d: %g vs %g", x, got, want)
		}
	}
}

func TestWireArrayAverageMatchesAvgShortArea(t *testing.T) {
	dist := defect.SizeDist{X0: 3}
	const l, w, s, maxX = 100, 2, 4, 24
	a := []geom.Rect{geom.R(0, 0, l, w)}
	b := []geom.Rect{geom.R(0, w+s, l, 2*w+s)}
	exact := AvgShortArea(a, b, dist, maxX)
	closed := WireArrayShortAreaPerTrack(l, w, s, dist, maxX)
	if math.Abs(exact-closed) > 1e-9 {
		t.Fatalf("avg: exact %g vs closed %g", exact, closed)
	}
}

func TestEstimateChannelShortWeight(t *testing.T) {
	dist := defect.SizeDist{X0: 3}
	one := EstimateChannelShortWeight(2, 100, 2, 4, dist, 1.6, 24)
	if one <= 0 {
		t.Fatal("two tracks must have a positive short weight")
	}
	ten := EstimateChannelShortWeight(10, 100, 2, 4, dist, 1.6, 24)
	if math.Abs(ten-9*one) > 1e-12 {
		t.Fatalf("weight must scale with adjacent pairs: %g vs 9×%g", ten, one)
	}
	if EstimateChannelShortWeight(1, 100, 2, 4, dist, 1.6, 24) != 0 {
		t.Fatal("a single track cannot short")
	}
	// Denser channels are worse: halving the spacing raises the weight.
	tight := EstimateChannelShortWeight(10, 100, 2, 2, dist, 1.6, 24)
	if tight <= ten {
		t.Fatal("tighter spacing must raise the short weight")
	}
}
