package critarea

import (
	"math"
	"math/rand"
	"testing"

	"defectsim/internal/geom"
)

func TestMCShortAreaMatchesExact(t *testing.T) {
	// Two parallel wires: the exact critical area has a closed form
	// (verified in critarea_test.go); the Monte-Carlo estimate must agree
	// within sampling/lattice error.
	a := []geom.Rect{geom.R(0, 0, 100, 2)}
	b := []geom.Rect{geom.R(0, 6, 100, 8)}
	for _, x := range []int{5, 8, 12} {
		exact := ShortArea(a, b, x)
		mc := MCShortArea(a, b, x, 400000, 42)
		if rel := math.Abs(mc-exact) / exact; rel > 0.10 {
			t.Fatalf("x=%d: MC %.1f vs exact %.1f (%.1f%% off)", x, mc, exact, 100*rel)
		}
	}
}

func TestMCShortAreaRandomizedCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		mk := func() []geom.Rect {
			n := 1 + rng.Intn(3)
			rs := make([]geom.Rect, n)
			for i := range rs {
				x, y := rng.Intn(40), rng.Intn(40)
				rs[i] = geom.R(x, y, x+2+rng.Intn(20), y+2+rng.Intn(6))
			}
			return rs
		}
		a, b := mk(), mk()
		x := 4 + rng.Intn(10)
		exact := ShortArea(a, b, x)
		mc := MCShortArea(a, b, x, 300000, int64(trial))
		if exact == 0 {
			// Zero critical area: overlapping-set configurations always
			// short (both sets hit), so only insist MC is small relative to
			// the bounding box when the sets are disjoint enough.
			continue
		}
		tol := 0.15*exact + 3
		if math.Abs(mc-exact) > tol {
			t.Fatalf("trial %d x=%d: MC %.1f vs exact %.1f", trial, x, mc, exact)
		}
	}
}

func TestMCShortAreaDegenerate(t *testing.T) {
	a := []geom.Rect{geom.R(0, 0, 10, 2)}
	if MCShortArea(nil, a, 5, 100, 1) != 0 ||
		MCShortArea(a, a, 0, 100, 1) != 0 ||
		MCShortArea(a, a, 5, 0, 1) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
}
