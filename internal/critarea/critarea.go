// Package critarea computes critical areas: the chip area in which the
// center of a spot defect of a given size must fall to cause a fault
// (Stapper's construction). Together with defect densities these yield the
// fault weights w = A·D of the paper's equations (4)–(6).
//
// Defects are modeled as squares of side x (λ). For a short between two
// shape sets, the critical area is area((A ⊕ x/2) ∩ (B ⊕ x/2)) — a defect
// bridges the sets iff its center lies where the two dilations intersect.
// For an open on a wire of drawn width w, a missing-material defect of size
// x > w severs the wire when its center lies in a band of height (x−w)
// along the wire: A(x) = L·(x−w).
//
// Average critical areas integrate A(x) against the defect-size density of
// package defect.
package critarea

import (
	"defectsim/internal/defect"
	"defectsim/internal/geom"
)

// ShortArea returns the critical area (λ²) for a defect of side x to short
// the two shape sets a and b. Computation is exact: shapes are scaled to
// half-λ units so that dilation by x/2 stays integral.
func ShortArea(a, b []geom.Rect, x int) float64 {
	if x <= 0 || len(a) == 0 || len(b) == 0 {
		return 0
	}
	ea := dilate(a, x)
	eb := dilate(b, x)
	inter := geom.IntersectSets(ea, eb)
	return float64(geom.UnionArea(inter)) / 4 // quarter-λ² → λ²
}

// dilate scales rects to half-λ units and grows them by x half-λ (= x/2 λ).
func dilate(rects []geom.Rect, x int) []geom.Rect {
	out := make([]geom.Rect, 0, len(rects))
	for _, r := range rects {
		out = append(out, geom.Rect{
			X0: 2*r.X0 - x, Y0: 2*r.Y0 - x,
			X1: 2*r.X1 + x, Y1: 2*r.Y1 + x,
		})
	}
	return out
}

// OpenArea returns the critical area (λ²) for a missing-material defect of
// side x to sever any wire rectangle in rects. Each rectangle is treated as
// a wire of width MinDim and length MaxDim; end effects are ignored (the
// standard first-order model).
func OpenArea(rects []geom.Rect, x int) float64 {
	if x <= 0 {
		return 0
	}
	var area float64
	for _, r := range rects {
		w := r.MinDim()
		if x <= w {
			continue
		}
		l := r.MaxDim()
		area += float64(l) * float64(x-w)
	}
	return area
}

// CutOpenArea returns the critical area for missing-cut defects over the
// given contact/via cuts: a defect of side x ≥ the cut size centered within
// the cut kills it. First order: A(x) = (cut side)² for x ≥ side.
func CutOpenArea(cuts []geom.Rect, x int) float64 {
	var area float64
	for _, c := range cuts {
		if x >= c.MinDim() {
			area += float64(c.Area())
		}
	}
	return area
}

// Average integrates sizeArea(x)·f(x) over defect sizes 1..maxSize using
// the midpoint rule with Δx = 1. The result has units λ² and is the
// size-averaged critical area A of the fault.
func Average(dist defect.SizeDist, maxSize int, sizeArea func(x int) float64) float64 {
	var avg float64
	for x := 1; x <= maxSize; x++ {
		avg += dist.PDF(float64(x)) * sizeArea(x)
	}
	return avg
}

// AvgShortArea is the size-averaged critical area for shorting a and b.
func AvgShortArea(a, b []geom.Rect, dist defect.SizeDist, maxSize int) float64 {
	return Average(dist, maxSize, func(x int) float64 { return ShortArea(a, b, x) })
}

// AvgOpenArea is the size-averaged critical area for severing rects.
func AvgOpenArea(rects []geom.Rect, dist defect.SizeDist, maxSize int) float64 {
	return Average(dist, maxSize, func(x int) float64 { return OpenArea(rects, x) })
}

// AvgCutOpenArea is the size-averaged critical area for killing cuts.
func AvgCutOpenArea(cuts []geom.Rect, dist defect.SizeDist, maxSize int) float64 {
	return Average(dist, maxSize, func(x int) float64 { return CutOpenArea(cuts, x) })
}

// MinShortingSize returns the smallest defect side that can short a and b
// (one plus the largest per-axis gap between the closest pair), or maxSize+1
// when even the largest considered defect cannot. Used to prune net pairs
// before the exact computation.
func MinShortingSize(a, b []geom.Rect, maxSize int) int {
	best := maxSize + 1
	for _, ra := range a {
		for _, rb := range b {
			dx, dy := ra.GapTo(rb)
			g := dx
			if dy > g {
				g = dy
			}
			// A defect of side x dilates each shape by x/2: shapes with gap g
			// short when x > g.
			if g+1 < best {
				best = g + 1
			}
		}
	}
	return best
}
