package critarea

import (
	"math/rand"

	"defectsim/internal/geom"
)

// MCShortArea estimates the short critical area between shape sets a and b
// for square defects of side x by Monte-Carlo: defect centers are sampled
// uniformly over the dilated bounding box and a hit is a center whose
// defect square overlaps both sets. It exists to cross-validate the exact
// expand-and-intersect computation (ShortArea) — the two must agree within
// sampling error, which the test suite asserts.
func MCShortArea(a, b []geom.Rect, x int, samples int, seed int64) float64 {
	if x <= 0 || len(a) == 0 || len(b) == 0 || samples <= 0 {
		return 0
	}
	bbA, _ := geom.BoundingBox(a)
	bbB, _ := geom.BoundingBox(b)
	bb := bbA.Union(bbB).Expand((x + 3) / 2)
	rng := rand.New(rand.NewSource(seed))

	half := float64(x) / 2
	w := float64(bb.W())
	h := float64(bb.H())
	hits := 0
	for s := 0; s < samples; s++ {
		cx := float64(bb.X0) + rng.Float64()*w
		cy := float64(bb.Y0) + rng.Float64()*h
		if overlapsAny(cx, cy, half, a) && overlapsAny(cx, cy, half, b) {
			hits++
		}
	}
	return w * h * float64(hits) / float64(samples)
}

// overlapsAny reports whether the square of half-side `half` centered at
// (cx, cy) shares interior area with any rectangle.
func overlapsAny(cx, cy, half float64, rects []geom.Rect) bool {
	for _, r := range rects {
		if cx-half < float64(r.X1) && float64(r.X0) < cx+half &&
			cy-half < float64(r.Y1) && float64(r.Y0) < cy+half {
			return true
		}
	}
	return false
}
