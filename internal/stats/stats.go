// Package stats provides the small statistics toolbox of the experiments:
// logarithmic histograms (the paper's fault-weight histogram, fig. 3),
// percentiles and summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LogHistogram bins positive values by order of magnitude.
type LogHistogram struct {
	// BinsPerDecade controls resolution (default 4 when zero).
	BinsPerDecade int
	lo            int // index of the first bin (floor(log10(min)·bpd))
	counts        []int
	n             int
}

// NewLogHistogram builds a histogram of the positive values.
func NewLogHistogram(values []float64, binsPerDecade int) *LogHistogram {
	if binsPerDecade <= 0 {
		binsPerDecade = 4
	}
	h := &LogHistogram{BinsPerDecade: binsPerDecade}
	var idx []int
	for _, v := range values {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		idx = append(idx, int(math.Floor(math.Log10(v)*float64(binsPerDecade))))
	}
	if len(idx) == 0 {
		return h
	}
	lo, hi := idx[0], idx[0]
	for _, i := range idx {
		if i < lo {
			lo = i
		}
		if i > hi {
			hi = i
		}
	}
	h.lo = lo
	h.counts = make([]int, hi-lo+1)
	for _, i := range idx {
		h.counts[i-lo]++
		h.n++
	}
	return h
}

// N returns the number of binned values.
func (h *LogHistogram) N() int { return h.n }

// Bins returns the bin lower edges (in value space) and counts.
func (h *LogHistogram) Bins() (edges []float64, counts []int) {
	for i, c := range h.counts {
		e := math.Pow(10, float64(h.lo+i)/float64(h.BinsPerDecade))
		edges = append(edges, e)
		counts = append(counts, c)
	}
	return edges, counts
}

// SpanDecades returns the histogram width in decades (0 when empty).
func (h *LogHistogram) SpanDecades() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(len(h.counts)) / float64(h.BinsPerDecade)
}

// Render draws the histogram as ASCII art, one row per bin.
func (h *LogHistogram) Render(width int) string {
	if h.n == 0 {
		return "(empty histogram)\n"
	}
	if width <= 0 {
		width = 50
	}
	maxC := 0
	for _, c := range h.counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	edges, counts := h.Bins()
	for i, c := range counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%9.2e |%-*s %d\n", edges[i], width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Percentile returns the p-th percentile (0–100) of values by
// nearest-rank on a sorted copy. It panics on an empty slice.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		panic("stats: percentile of empty slice")
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// Summary holds the usual scalar summary of a sample.
type Summary struct {
	N                 int
	Min, Max          float64
	Mean, Median      float64
	GeoMean           float64 // geometric mean over positive values
	P05, P95          float64
	DispersionDecades float64 // log10(P95/P05) over positive values
}

// Summarize computes a Summary. It panics on an empty slice.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		panic("stats: summarize empty slice")
	}
	s := Summary{N: len(values), Min: values[0], Max: values[0]}
	var sum, logSum float64
	pos := 0
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		if v > 0 {
			logSum += math.Log(v)
			pos++
		}
	}
	s.Mean = sum / float64(len(values))
	s.Median = Percentile(values, 50)
	s.P05 = Percentile(values, 5)
	s.P95 = Percentile(values, 95)
	if pos > 0 {
		s.GeoMean = math.Exp(logSum / float64(pos))
	}
	if s.P05 > 0 && s.P95 > 0 {
		s.DispersionDecades = math.Log10(s.P95 / s.P05)
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g p05=%.3g median=%.3g mean=%.3g p95=%.3g max=%.3g span=%.2f decades",
		s.N, s.Min, s.P05, s.Median, s.Mean, s.P95, s.Max, s.DispersionDecades)
}
