package stats

import (
	"math"
	"strings"
	"testing"
)

func TestLogHistogramBasics(t *testing.T) {
	values := []float64{1e-9, 2e-9, 1e-8, 1e-7, 5e-7, 1e-6}
	h := NewLogHistogram(values, 1)
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	edges, counts := h.Bins()
	if len(edges) != len(counts) {
		t.Fatal("edges/counts mismatch")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 6 {
		t.Fatalf("counts sum %d", total)
	}
	// Span: 1e-9..1e-6 is 4 decade bins at 1 bin/decade.
	if got := h.SpanDecades(); got != 4 {
		t.Fatalf("span = %g decades", got)
	}
	if !strings.Contains(h.Render(20), "#") {
		t.Fatal("render must draw bars")
	}
}

func TestLogHistogramIgnoresBadValues(t *testing.T) {
	h := NewLogHistogram([]float64{-1, 0, math.NaN(), math.Inf(1), 10}, 4)
	if h.N() != 1 {
		t.Fatalf("N = %d, want 1", h.N())
	}
	empty := NewLogHistogram(nil, 4)
	if empty.N() != 0 || empty.SpanDecades() != 0 {
		t.Fatal("empty histogram")
	}
	if !strings.Contains(empty.Render(10), "empty") {
		t.Fatal("empty render")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	if Percentile(v, 0) != 1 || Percentile(v, 100) != 5 {
		t.Fatal("extremes")
	}
	if Percentile(v, 50) != 3 {
		t.Fatalf("median = %g", Percentile(v, 50))
	}
	if Percentile(v, 20) != 1 {
		t.Fatalf("p20 = %g", Percentile(v, 20))
	}
	// Input must not be mutated.
	if v[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	v := []float64{1, 10, 100, 1000}
	s := Summarize(v)
	if s.N != 4 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("summary: %+v", s)
	}
	if math.Abs(s.Mean-277.75) > 1e-9 {
		t.Fatalf("mean = %g", s.Mean)
	}
	if math.Abs(s.GeoMean-math.Pow(10, 1.5)) > 1e-9 {
		t.Fatalf("geomean = %g", s.GeoMean)
	}
	if s.String() == "" {
		t.Fatal("string")
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	Summarize(nil)
}
