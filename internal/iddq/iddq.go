// Package iddq models quiescent-current (IDDQ) testing quantitatively:
// instead of the boolean "bridge with opposite drives ⇒ detect" screen of
// the switch-level simulator, it estimates the actual defect current per
// vector from the drive conductances, adds the good die's background
// leakage, and studies pass/fail limit setting — the engineering step
// between "IDDQ can see bridges" and a production test (threshold too low:
// false fails; too high: test escapes).
//
// Current model: a bridge conducting between a node pulled to VDD with
// conductance g_up and a node pulled to GND with conductance g_dn draws
//
//	I = VDD · series(g_up, G_bridge, g_dn)
//
// in normalized units (VDD = 1, conductances in the cell library's width
// units). Background leakage is a per-device constant. Gate-input opens
// add a floating-gate leakage term for the affected stage whenever its
// output would float — the secondary IDDQ mechanism for opens.
package iddq

import (
	"fmt"
	"math"

	"defectsim/internal/cell"
	"defectsim/internal/fault"
	"defectsim/internal/switchsim"
	"defectsim/internal/transistor"
)

// Model parameters (normalized units: VDD = 1, conductance = drawn width).
type Model struct {
	// LeakPerDevice is the background off-state leakage each transistor
	// contributes to the good die's IDDQ.
	LeakPerDevice float64
	// FloatingGateLeak is the extra current drawn by a stage whose gate
	// floats at an intermediate level (gate-input open defects).
	FloatingGateLeak float64
	// BridgeG is the defect conductance (matches the switch-level model).
	BridgeG float64
}

// DefaultModel returns parameters representative of a mature CMOS line:
// background leakage orders of magnitude below defect currents.
func DefaultModel() Model {
	return Model{LeakPerDevice: 1e-6, FloatingGateLeak: 0.05, BridgeG: switchsim.BridgeG}
}

// Baseline returns the good die's quiescent current (background leakage).
func (m Model) Baseline(c *transistor.Circuit) float64 {
	return float64(len(c.Devices)) * m.LeakPerDevice
}

// series combines conductances in series.
func series(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return a * b / (a + b)
}

// pullConductance returns the strongest conductance with which net is
// pulled to level v (V0 or V1) through definitely-conducting devices,
// given the machine's settled good values. It is a single-CCC relaxation
// mirroring the switch-level solver's strength model.
func pullConductance(c *transistor.Circuit, good *switchsim.Machine, net int, v switchsim.Val) float64 {
	id := c.CCCOf[net]
	if id < 0 {
		// Rails and primary inputs are ideal drivers.
		if good.Val(net) == v {
			return switchsim.RailG
		}
		return 0
	}
	local := map[int]int{}
	nets := c.CCCs[id]
	for i, n := range nets {
		local[n] = i
	}
	g := make([]float64, len(nets))
	type edge struct {
		u, v int
		gd   float64
		srcV switchsim.Val
	}
	var edges []edge
	for _, di := range c.DevsOf[id] {
		d := &c.Devices[di]
		gv := good.Val(d.Gate)
		on := (gv == switchsim.V1 && d.Type == cell.NMOS) || (gv == switchsim.V0 && d.Type == cell.PMOS)
		if !on {
			continue
		}
		si, sok := local[d.Source]
		ti, tok := local[d.Drain]
		switch {
		case sok && tok:
			edges = append(edges, edge{si, ti, d.Conductance, switchsim.VX})
		case sok:
			edges = append(edges, edge{-1, si, d.Conductance, good.Val(d.Drain)})
		case tok:
			edges = append(edges, edge{-1, ti, d.Conductance, good.Val(d.Source)})
		}
	}
	for iter := 0; iter <= len(nets); iter++ {
		changed := false
		for _, e := range edges {
			if e.u == -1 {
				if e.srcV != v {
					continue
				}
				if cand := series(switchsim.RailG, e.gd); cand > g[e.v]*(1+1e-12) {
					g[e.v] = cand
					changed = true
				}
				continue
			}
			if cand := series(g[e.u], e.gd); cand > g[e.v]*(1+1e-12) {
				g[e.v] = cand
				changed = true
			}
			if cand := series(g[e.v], e.gd); cand > g[e.u]*(1+1e-12) {
				g[e.u] = cand
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return g[local[net]]
}

// FaultCurrent returns the defect current drawn by fault f on the given
// settled good machine (normalized units; 0 when the defect draws none).
func (m Model) FaultCurrent(c *transistor.Circuit, good *switchsim.Machine, f fault.Realistic) float64 {
	switch f.Kind {
	case fault.KindBridge:
		va, vb := good.Val(f.NetA), good.Val(f.NetB)
		if va == switchsim.VX || vb == switchsim.VX || va == vb {
			return 0
		}
		hi, lo := f.NetA, f.NetB
		if vb == switchsim.V1 {
			hi, lo = f.NetB, f.NetA
		}
		gUp := pullConductance(c, good, hi, switchsim.V1)
		gDn := pullConductance(c, good, lo, switchsim.V0)
		return series(series(gUp, m.BridgeG), gDn)
	case fault.KindOpenInput:
		// A floating gate sits at an intermediate level and half-turns
		// both networks of its stage on: constant extra leakage.
		return m.FloatingGateLeak
	default:
		return 0
	}
}

// Measurements is the per-vector IDDQ trace of one defect: max over the
// vector set is what a single-threshold production test compares.
type Measurements struct {
	Baseline float64
	Currents []float64 // per fault: max defect current over the vector set
}

// Measure runs the good machine over the vectors and records, per fault,
// the maximum defect current (plus baseline separately).
func Measure(c *transistor.Circuit, list *fault.List, vectors []switchsim.Vector, m Model) (*Measurements, error) {
	good := switchsim.NewMachine(c)
	out := &Measurements{
		Baseline: m.Baseline(c),
		Currents: make([]float64, len(list.Faults)),
	}
	for k, vec := range vectors {
		if !good.Apply(vec) {
			return nil, fmt.Errorf("iddq: good machine failed to settle on vector %d", k)
		}
		for i, f := range list.Faults {
			if cur := m.FaultCurrent(c, good, f); cur > out.Currents[i] {
				out.Currents[i] = cur
			}
		}
	}
	return out, nil
}

// LimitStudy evaluates a pass/fail threshold sweep: for each candidate
// limit (as a multiple of baseline), which weighted fraction of the fault
// list would fail the IDDQ test.
type LimitStudy struct {
	Limits   []float64 // absolute current limits
	Coverage []float64 // weighted fraction of faults with I > limit
}

// StudyLimits sweeps limits between the baseline and the largest defect
// current (log-spaced, n points).
func StudyLimits(meas *Measurements, list *fault.List, n int) *LimitStudy {
	maxI := meas.Baseline
	for _, c := range meas.Currents {
		if c > maxI {
			maxI = c
		}
	}
	if n < 2 {
		n = 2
	}
	st := &LimitStudy{}
	lo := math.Log(meas.Baseline)
	hi := math.Log(maxI * 1.01)
	total := list.TotalWeight()
	for i := 0; i < n; i++ {
		limit := math.Exp(lo + (hi-lo)*float64(i)/float64(n-1))
		var covered float64
		for j, c := range meas.Currents {
			if meas.Baseline+c > limit {
				covered += list.Faults[j].Weight
			}
		}
		st.Limits = append(st.Limits, limit)
		st.Coverage = append(st.Coverage, covered/total)
	}
	return st
}

// BestLimit returns the lowest studied limit that is at least headroom×
// baseline (false-fail guardband), with the coverage it achieves.
func (st *LimitStudy) BestLimit(baseline, headroom float64) (limit, coverage float64) {
	best := -1
	for i, l := range st.Limits {
		if l >= baseline*headroom {
			best = i
			break
		}
	}
	if best < 0 {
		best = len(st.Limits) - 1
	}
	return st.Limits[best], st.Coverage[best]
}
