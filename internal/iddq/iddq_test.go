package iddq

import (
	"math"
	"testing"

	"defectsim/internal/defect"
	"defectsim/internal/extract"
	"defectsim/internal/fault"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/switchsim"
	"defectsim/internal/transistor"
)

func invChain(t *testing.T) (*transistor.Circuit, int, int) {
	t.Helper()
	nl := netlist.New("inv2")
	a := nl.AddPI("a")
	n1 := nl.AddGate(netlist.Not, "n1", a)
	y := nl.AddGate(netlist.Not, "y", n1)
	nl.MarkPO(y)
	L, err := layout.Build(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	return transistor.FromLayout(L), 2 + n1, 2 + y
}

func TestBridgeCurrentClosedForm(t *testing.T) {
	// Bridge between the two inverter outputs with a = 0: n1 = 1 (pull-up
	// g = 8), y = 0 (pull-down g = 6). Expected defect current ≈
	// series(series(8, BridgeG), 6) ≈ series(8, 6) = 24/7.
	c, n1, y := invChain(t)
	good := switchsim.NewMachine(c)
	if !good.Apply(switchsim.Vector{switchsim.V0}) {
		t.Fatal("did not settle")
	}
	m := DefaultModel()
	f := fault.Realistic{Kind: fault.KindBridge, NetA: n1, NetB: y}
	got := m.FaultCurrent(c, good, f)
	want := series(series(8, m.BridgeG), 6)
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("bridge current %g, want %g", got, want)
	}
	if math.Abs(want-24.0/7.0)/want > 1e-3 {
		t.Fatalf("closed form drifted: %g vs 24/7", want)
	}
}

func TestNoCurrentWithoutContention(t *testing.T) {
	// a = 1: n1 = 0, y = 1 — opposite polarity pair, still conducting.
	// But bridge n1 to GND with n1 = 0: no contention, no current.
	c, n1, _ := invChain(t)
	good := switchsim.NewMachine(c)
	good.Apply(switchsim.Vector{switchsim.V1}) // n1 = 0
	m := DefaultModel()
	f := fault.Realistic{Kind: fault.KindBridge, NetA: layout.NetGND, NetB: n1}
	if got := m.FaultCurrent(c, good, f); got != 0 {
		t.Fatalf("no contention must draw no current, got %g", got)
	}
	// Opposite phase: n1 = 1 vs GND → current flows.
	good.Apply(switchsim.Vector{switchsim.V0})
	if got := m.FaultCurrent(c, good, f); got <= 0 {
		t.Fatal("rail contention must draw current")
	}
}

func TestOpenInputLeakAndDriverSilence(t *testing.T) {
	c, n1, _ := invChain(t)
	good := switchsim.NewMachine(c)
	good.Apply(switchsim.Vector{switchsim.V0})
	m := DefaultModel()
	if got := m.FaultCurrent(c, good, fault.Realistic{
		Kind: fault.KindOpenInput, NetA: n1, Inst: 1, Node: 2,
	}); got != m.FloatingGateLeak {
		t.Fatalf("floating gate leak %g, want %g", got, m.FloatingGateLeak)
	}
	if got := m.FaultCurrent(c, good, fault.Realistic{
		Kind: fault.KindOpenDriver, NetA: n1,
	}); got != 0 {
		t.Fatal("driver opens draw no quiescent current in this model")
	}
}

func fullSetup(t *testing.T) (*transistor.Circuit, *fault.List, []switchsim.Vector) {
	t.Helper()
	nl := netlist.RippleAdder(4)
	L, err := layout.Build(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	list := extract.Faults(L, defect.Typical())
	list.ScaleToYield(0.75)
	c := transistor.FromLayout(L)
	var vecs []switchsim.Vector
	seed := uint64(12345)
	for k := 0; k < 32; k++ {
		v := make(switchsim.Vector, len(nl.PIs))
		for j := range v {
			seed = seed*6364136223846793005 + 1442695040888963407
			v[j] = switchsim.Val((seed >> 62) & 1)
		}
		vecs = append(vecs, v)
	}
	return c, list, vecs
}

func TestMeasureAndLimits(t *testing.T) {
	c, list, vecs := fullSetup(t)
	m := DefaultModel()
	meas, err := Measure(c, list, vecs, m)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Baseline <= 0 {
		t.Fatal("baseline must be positive")
	}
	var withCurrent int
	for i, cur := range meas.Currents {
		if cur < 0 {
			t.Fatal("negative current")
		}
		if cur > 0 {
			withCurrent++
			if list.Faults[i].Kind == fault.KindOpenDriver {
				t.Fatal("driver opens must be silent")
			}
		}
	}
	if withCurrent == 0 {
		t.Fatal("no fault drew current")
	}

	st := StudyLimits(meas, list, 12)
	if len(st.Limits) != 12 {
		t.Fatal("limit count")
	}
	// Coverage must fall monotonically as the limit rises.
	for i := 1; i < len(st.Coverage); i++ {
		if st.Coverage[i] > st.Coverage[i-1]+1e-12 {
			t.Fatal("coverage must be non-increasing in the limit")
		}
	}
	// A tight limit near baseline catches the most; huge limits catch ~0.
	if st.Coverage[0] <= st.Coverage[len(st.Coverage)-1] {
		t.Fatal("limit sweep degenerate")
	}
	limit, cov := st.BestLimit(meas.Baseline, 3)
	if limit < 3*meas.Baseline {
		t.Fatalf("guardband violated: %g < 3×%g", limit, meas.Baseline)
	}
	if cov <= 0 {
		t.Fatal("guardbanded limit must still cover defects (currents ≫ leakage)")
	}
}

func TestDefectCurrentsDominateBaseline(t *testing.T) {
	// The whole point of IDDQ: bridge currents sit orders of magnitude
	// above background leakage, so the threshold is easy to place.
	c, list, vecs := fullSetup(t)
	meas, err := Measure(c, list, vecs, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	var maxCur float64
	for _, cur := range meas.Currents {
		if cur > maxCur {
			maxCur = cur
		}
	}
	if maxCur < 1000*meas.Baseline {
		t.Fatalf("defect current %g not well separated from baseline %g", maxCur, meas.Baseline)
	}
}
