package experiments

import (
	"context"
	"fmt"
	"sort"

	"defectsim/internal/atpg"
	"defectsim/internal/dlmodel"
	"defectsim/internal/fault"
	"defectsim/internal/layout"
	"defectsim/internal/switchsim"
)

// BridgeTopUp (ABL-5) is the constructive answer to Θmax < 1: target the
// bridges the stuck-at test set missed with constrained ATPG (aggressor
// pinned to the victim's stuck value), verify each candidate pattern
// against the switch-level bridge model, and measure how far the verified
// extra vectors push the realistic coverage ceiling.
type BridgeTopUp struct {
	Targeted     int // undetected netlist-visible bridges attacked
	Generated    int // candidate patterns from constrained ATPG
	Verified     int // patterns confirmed by switch-level simulation
	ExtraVectors int

	ThetaBefore, ThetaAfter       float64
	ResidualBefore, ResidualAfter float64
	NewlyDetected                 int
}

// RunBridgeTopUp attacks up to maxTargets of the heaviest undetected
// bridges and re-scores the whole campaign with the verified vectors
// appended.
func RunBridgeTopUp(p *Pipeline, maxTargets int) (*BridgeTopUp, error) {
	t := &BridgeTopUp{}
	t.ThetaBefore = p.ThetaCurve(false).Final()
	t.ResidualBefore = dlmodel.Params{R: 1, ThetaMax: t.ThetaBefore}.ResidualDL(p.Yield)

	// Undetected bridges whose both nets are netlist-visible.
	type target struct {
		idx    int
		w      float64
		na, nb int // netlist net indices
	}
	var targets []target
	for i, f := range p.Faults.Faults {
		if f.Kind != fault.KindBridge || p.SwitchRes.DetectedAt[i] != 0 {
			continue
		}
		a, b := p.Layout.Nets[f.NetA], p.Layout.Nets[f.NetB]
		if a.Kind != layout.KindSignal || b.Kind != layout.KindSignal {
			continue
		}
		targets = append(targets, target{i, f.Weight, a.NetlistNet, b.NetlistNet})
	}
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].w != targets[j].w {
			return targets[i].w > targets[j].w
		}
		return targets[i].idx < targets[j].idx
	})
	if len(targets) > maxTargets {
		targets = targets[:maxTargets]
	}
	t.Targeted = len(targets)

	gen, err := atpg.NewGenerator(p.Netlist)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var extra []switchsim.Vector
	for _, tg := range targets {
		pats := gen.GenerateBridge(tg.na, tg.nb, p.Config.BacktrackLimit)
		t.Generated += len(pats)
		for _, pat := range pats {
			vec := make(switchsim.Vector, len(pat))
			for j, bbit := range pat {
				vec[j] = switchsim.Val(bbit)
			}
			// Switch-level verification with the true drive strengths.
			m, verdict := switchsim.NewFaultMachine(p.Circuit, p.Faults.Faults[tg.idx])
			if verdict != switchsim.VerdictSimulate {
				continue
			}
			good := switchsim.NewMachine(p.Circuit)
			if !good.Apply(vec) || !m.Apply(vec) {
				continue
			}
			detected := false
			for _, po := range p.Circuit.POs {
				gv, fv := good.Val(po), m.Val(po)
				if gv != switchsim.VX && fv != switchsim.VX && gv != fv {
					detected = true
					break
				}
			}
			if !detected {
				continue
			}
			t.Verified++
			key := fmt.Sprint(vec)
			if !seen[key] {
				seen[key] = true
				extra = append(extra, vec)
			}
			break // one verified vector per bridge suffices
		}
	}
	t.ExtraVectors = len(extra)
	if len(extra) == 0 {
		t.ThetaAfter = t.ThetaBefore
		t.ResidualAfter = t.ResidualBefore
		return t, nil
	}

	// Re-score the full campaign with the extra vectors appended. The
	// pipeline's good trace covers the original prefix; the simulator
	// continues on a live machine for the appended tail.
	base := p.Vectors()
	vectors := make([]switchsim.Vector, 0, len(base)+len(extra))
	vectors = append(vectors, base...)
	vectors = append(vectors, extra...)
	trace, err := p.GoodTrace(context.Background())
	if err != nil {
		return nil, err
	}
	res, err := switchsim.SimulateFaultsTrace(context.Background(), p.Circuit, p.Faults, vectors,
		p.Config.Workers, switchsim.BridgeG, p.Config.Obs.Metrics(), trace)
	if err != nil {
		return nil, err
	}
	// IDDQ credit is deliberately disabled on both sides of the Θ delta:
	// ThetaBefore is the voltage-only ThetaCurve(false), so scoring the
	// appended set with iddq=false keeps the comparison apples-to-apples.
	// This is also the right accounting for the paper's eq. 6: the top-up
	// measures what extra *voltage* vectors buy, while the IDDQ screen is
	// conductance-based and vector-count-independent (any vector exposing
	// the contention current suffices) — its contribution is the separate
	// ABL-2 ablation, and folding it in here would double-count detections
	// that needed no new vectors at all.
	// TestBridgeTopUpVoltageOnlyAccounting locks this choice.
	det := res.DetectedBy(len(vectors), false)
	t.ThetaAfter = p.Faults.WeightedCoverage(det)
	t.ResidualAfter = dlmodel.Params{R: 1, ThetaMax: t.ThetaAfter}.ResidualDL(p.Yield)
	for i := range p.Faults.Faults {
		if det[i] && p.SwitchRes.DetectedAt[i] == 0 {
			t.NewlyDetected++
		}
	}
	return t, nil
}

// Render prints the top-up report.
func (t *BridgeTopUp) Render() string {
	return fmt.Sprintf(
		"ABL-5  Realistic-fault (bridge) test top-up\n"+
			"  targeted undetected bridges : %d\n"+
			"  ATPG candidate patterns     : %d (switch-verified: %d)\n"+
			"  extra vectors appended      : %d\n"+
			"  newly detected faults       : %d\n"+
			"  Θ ceiling                   : %.4f → %.4f\n"+
			"  residual defect level       : %.0f ppm → %.0f ppm\n",
		t.Targeted, t.Generated, t.Verified, t.ExtraVectors, t.NewlyDetected,
		t.ThetaBefore, t.ThetaAfter, 1e6*t.ResidualBefore, 1e6*t.ResidualAfter)
}
