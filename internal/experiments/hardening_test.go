package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"defectsim/internal/faultinject"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
)

// TestRunCtxCancelDuringATPG pins the cancellation-latency contract: a
// run stalled inside the ATPG stage must return within ~100ms of
// cancellation, as a *PipelineError naming the stage and wrapping
// context.Canceled.
func TestRunCtxCancelDuringATPG(t *testing.T) {
	started := make(chan struct{})
	var once bool
	restore := faultinject.Set(faultinject.HookATPGFault, func(ctx context.Context) error {
		if !once {
			once = true
			close(started)
		}
		return faultinject.Stall(ctx)
	})
	defer restore()

	cfg := smallConfig()
	cfg.RandomVectors = 0 // every fault goes through the deterministic loop
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		p   *Pipeline
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		p, err := RunCtx(ctx, netlist.C17(), cfg)
		done <- outcome{p, err}
	}()

	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline never reached the ATPG stage")
	}
	cancel()
	start := time.Now()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled run did not return within 2s")
	}
	if lat := time.Since(start); lat > 100*time.Millisecond {
		t.Fatalf("cancellation latency %v exceeds 100ms", lat)
	}
	if out.err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	var pe *PipelineError
	if !errors.As(out.err, &pe) {
		t.Fatalf("error %T is not a *PipelineError: %v", out.err, out.err)
	}
	if pe.Stage != "atpg" {
		t.Fatalf("PipelineError.Stage = %q, want atpg", pe.Stage)
	}
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", out.err)
	}
	if out.p != nil {
		t.Fatal("cancelled run must not return a pipeline")
	}
}

// TestRunCtxATPGBudgetDegrades pins graceful degradation: an exhausted
// ATPG stage budget yields a complete, usable pipeline whose partial test
// set accounts aborted faults in the coverage denominator.
func TestRunCtxATPGBudgetDegrades(t *testing.T) {
	restore := faultinject.Set(faultinject.HookATPGFault, faultinject.Sleep(5*time.Millisecond))
	defer restore()

	cfg := smallConfig()
	cfg.RandomVectors = 0
	cfg.Obs = obs.New()
	cfg.StageBudgets = map[string]time.Duration{"atpg": 20 * time.Millisecond}

	p, err := RunCtx(context.Background(), netlist.C17(), cfg)
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not fail: %v", err)
	}
	if !p.Degraded() {
		t.Fatal("run is not marked degraded")
	}
	found := false
	for _, d := range p.Degradations {
		if d.Stage == "atpg" && strings.Contains(d.Reason, "budget exhausted") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no atpg budget degradation recorded: %+v", p.Degradations)
	}
	if !p.TestSet.Incomplete {
		t.Fatal("partial test set is not marked Incomplete")
	}
	det, unt, ab := p.TestSet.Counts()
	if ab == 0 {
		t.Fatal("budget-starved ATPG aborted no faults")
	}
	if det+unt+ab != len(p.StuckAt) {
		t.Fatalf("counts %d+%d+%d do not partition %d faults", det, unt, ab, len(p.StuckAt))
	}
	// Aborted faults stay in the coverage denominator (paper eq. 6).
	want := float64(det) / float64(len(p.StuckAt)-unt)
	if got := p.TestSet.Coverage(true); got != want {
		t.Fatalf("Coverage(true) = %v, want %v", got, want)
	}
	// The rest of the pipeline still ran on the partial set.
	if p.SwitchRes == nil || p.Ks == nil {
		t.Fatal("downstream stages did not run on the degraded result")
	}
	if p.Report == nil {
		t.Fatal("degraded run has no report")
	}
	if len(p.Report.Events) == 0 {
		t.Fatal("degradation not surfaced in the run report events")
	}
	if !strings.Contains(p.Summary(), "degraded") {
		t.Fatal("degradation not surfaced in Summary")
	}
}

// TestRunCtxSwitchSimBudgetDegrades: an exhausted switch-sim budget keeps
// the vectors applied so far and marks unfinished faults undecided.
func TestRunCtxSwitchSimBudgetDegrades(t *testing.T) {
	restore := faultinject.Set(faultinject.HookSwitchSimVector, faultinject.Sleep(5*time.Millisecond))
	defer restore()

	cfg := smallConfig()
	cfg.StageBudgets = map[string]time.Duration{"switch-sim": 25 * time.Millisecond}

	p, err := RunCtx(context.Background(), netlist.C17(), cfg)
	if err != nil {
		t.Fatalf("switch-sim budget exhaustion must degrade, not fail: %v", err)
	}
	if !p.Degraded() {
		t.Fatal("run is not marked degraded")
	}
	if p.SwitchRes.VectorsApplied >= len(p.TestSet.Patterns) {
		t.Fatalf("VectorsApplied = %d, want < %d (early stop)", p.SwitchRes.VectorsApplied, len(p.TestSet.Patterns))
	}
	undecided := 0
	for _, u := range p.SwitchRes.Undecided {
		if u {
			undecided++
		}
	}
	for i, u := range p.SwitchRes.Undecided {
		if u && p.SwitchRes.DetectedAt[i] > 0 {
			t.Fatalf("fault %d both undecided and detected", i)
		}
	}
	found := false
	for _, d := range p.Degradations {
		if d.Stage == "switch-sim" && strings.Contains(d.Reason, "budget exhausted") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no switch-sim degradation recorded: %+v", p.Degradations)
	}
	_ = undecided // may be zero if every live fault was already detected
}

// TestRunCtxPanicIsolation: a panic inside a stage surfaces as a
// *PipelineError naming the stage, never as a process crash.
func TestRunCtxPanicIsolation(t *testing.T) {
	restore := faultinject.Set(faultinject.HookSwitchSimVector, faultinject.Panic("injected switch-sim panic"))
	defer restore()

	cfg := smallConfig()
	p, err := RunCtx(context.Background(), netlist.C17(), cfg)
	if err == nil {
		t.Fatal("panicking stage returned nil error")
	}
	if p != nil {
		t.Fatal("panicking run must not return a pipeline")
	}
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PipelineError", err)
	}
	if pe.Stage != "switch-sim" {
		t.Fatalf("PipelineError.Stage = %q, want switch-sim", pe.Stage)
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "injected switch-sim panic") {
		t.Fatalf("panic cause not preserved: %v", err)
	}
}

// TestRunCtxDeadlineFails: the global deadline is a hard stop, not a
// degradation — unlike a stage budget.
func TestRunCtxDeadlineFails(t *testing.T) {
	restore := faultinject.Set(faultinject.HookATPGFault, faultinject.Stall)
	defer restore()

	cfg := smallConfig()
	cfg.RandomVectors = 0
	cfg.Deadline = 30 * time.Millisecond
	start := time.Now()
	_, err := RunCtx(context.Background(), netlist.C17(), cfg)
	if err == nil {
		t.Fatal("deadline expiry returned nil error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap context.DeadlineExceeded: %v", err)
	}
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PipelineError", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("deadline expiry took %v to surface", el)
	}
}

// TestRunCtxErrorCarriesProgress: a traced failed run attaches the
// counter snapshot to the error so callers can see partial progress.
func TestRunCtxErrorCarriesProgress(t *testing.T) {
	restore := faultinject.Set(faultinject.HookSwitchSimVector, faultinject.Fail(errors.New("injected failure")))
	defer restore()

	cfg := smallConfig()
	cfg.Obs = obs.New()
	_, err := RunCtx(context.Background(), netlist.C17(), cfg)
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PipelineError: %v", err, err)
	}
	if pe.Stage != "switch-sim" {
		t.Fatalf("Stage = %q, want switch-sim", pe.Stage)
	}
	if len(pe.Progress) == 0 {
		t.Fatal("traced failure carries no progress counters")
	}
	seen := map[string]bool{}
	for _, c := range pe.Progress {
		seen[c.Name] = true
	}
	// ATPG finished before the failing stage, so its counters must be there.
	if !seen["atpg_deterministic_patterns"] && !seen["atpg_backtracks_total"] {
		t.Fatalf("progress snapshot misses upstream counters: %+v", pe.Progress)
	}
}

// TestConfigValidate pins the up-front configuration checks.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"negative vectors", func(c *Config) { c.RandomVectors = -1 }, "RandomVectors"},
		{"negative backtracks", func(c *Config) { c.BacktrackLimit = -5 }, "BacktrackLimit"},
		{"negative yield", func(c *Config) { c.TargetYield = -0.1 }, "TargetYield"},
		{"negative workers", func(c *Config) { c.Workers = -2 }, "Workers"},
		{"yield above one", func(c *Config) { c.TargetYield = 1.5 }, "TargetYield"},
		{"zero stats", func(c *Config) { c.Stats = DefaultConfig().Stats; c.Stats.MaxSize = 0 }, "Stats"},
		{"negative deadline", func(c *Config) { c.Deadline = -time.Second }, "Deadline"},
		{"unknown stage budget", func(c *Config) {
			c.StageBudgets = map[string]time.Duration{"warp-drive": time.Second}
		}, "unknown stage"},
		{"non-positive budget", func(c *Config) {
			c.StageBudgets = map[string]time.Duration{"atpg": 0}
		}, "must be > 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if _, rerr := Run(netlist.C17(), cfg); rerr == nil {
				t.Fatal("Run accepted a config Validate rejects")
			}
		})
	}
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultConfig fails validation: %v", err)
	}
	cfg.TargetYield = 0 // documented: disables scaling
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero TargetYield must validate: %v", err)
	}
	cfg.Workers = 4 // explicit pool size
	if err := cfg.Validate(); err != nil {
		t.Fatalf("positive Workers must validate: %v", err)
	}
	cfg.StageBudgets = map[string]time.Duration{"atpg": time.Hour, "switch-sim": time.Hour}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid stage budgets rejected: %v", err)
	}
}

// TestRunCachedCorruptionFallback pins the cache-hardening contract:
// every corruption mode falls back to a fresh run (no error), records the
// fallback, and rewrites a healthy cache.
func TestRunCachedCorruptionFallback(t *testing.T) {
	nl := netlist.RippleAdder(3)
	cfg := smallConfig()
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")

	if _, _, err := RunCached(nl, cfg, path); err != nil {
		t.Fatal(err)
	}
	healthy, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := []struct {
		name    string
		corrupt func(t *testing.T)
	}{
		{"garbage", func(t *testing.T) {
			if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T) {
			if err := os.WriteFile(path, healthy[:len(healthy)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"checksum mismatch", func(t *testing.T) {
			// Flip one byte inside the payload without breaking JSON:
			// patterns hold only 0/1 digits, so turn a "0" into a "1"
			// somewhere after the checksum field.
			data := append([]byte(nil), healthy...)
			at := strings.Index(string(data), `"patterns"`)
			if at < 0 {
				t.Fatal("no patterns field in cache payload")
			}
			for i := at; i < len(data); i++ {
				if data[i] == '0' {
					data[i] = '1'
					break
				}
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"version skew", func(t *testing.T) {
			data := []byte(strings.Replace(string(healthy), fmt.Sprintf(`"version":%d`, cacheVersion), `"version":99`, 1))
			if string(data) == string(healthy) {
				t.Fatal("version field not found for skewing")
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			tc.corrupt(t)
			c := cfg
			c.Obs = obs.New()
			p, hit, err := RunCachedCtx(context.Background(), nl, c, path)
			if err != nil {
				t.Fatalf("corrupt cache must fall back, not fail: %v", err)
			}
			if hit {
				t.Fatal("corrupt cache reported a hit")
			}
			found := false
			for _, d := range p.Degradations {
				if d.Stage == "cache" {
					found = true
				}
			}
			if !found {
				t.Fatalf("no cache degradation recorded: %+v", p.Degradations)
			}
			counters := map[string]int64{}
			for _, cs := range p.Report.Counters {
				counters[cs.Name] = cs.Value
			}
			if counters["pipeline_cache_corrupt"] != 1 {
				t.Fatalf("pipeline_cache_corrupt = %d, want 1", counters["pipeline_cache_corrupt"])
			}
			// The rewrite restored a healthy cache.
			if _, hit, err := RunCached(nl, cfg, path); err != nil || !hit {
				t.Fatalf("refreshed cache must hit (hit=%v err=%v)", hit, err)
			}
		})
	}
}

// TestRunCachedSaveFailureDegrades: an unwritable cache path degrades the
// run instead of failing it.
func TestRunCachedSaveFailureDegrades(t *testing.T) {
	nl := netlist.RippleAdder(3)
	cfg := smallConfig()
	path := filepath.Join(t.TempDir(), "no-such-dir", "cache.json")
	p, hit, err := RunCachedCtx(context.Background(), nl, cfg, path)
	if err != nil {
		t.Fatalf("unwritable cache must degrade, not fail: %v", err)
	}
	if hit {
		t.Fatal("phantom cache hit")
	}
	found := false
	for _, d := range p.Degradations {
		if d.Stage == "cache" && strings.Contains(d.Reason, "write failed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cache-write degradation recorded: %+v", p.Degradations)
	}
}

// TestRunCtxCleanRunUnchanged: without injection, budgets or deadlines,
// the hardened path produces the exact same results as before.
func TestRunCtxCleanRunUnchanged(t *testing.T) {
	cfg := smallConfig()
	p1, err := Run(netlist.C17(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := RunCtx(context.Background(), netlist.C17(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Degraded() || p2.Degraded() {
		t.Fatal("clean run reports degradations")
	}
	if p1.TestSet.Incomplete || p2.TestSet.Incomplete {
		t.Fatal("clean run has incomplete test set")
	}
	if got, want := p2.TestSet.Coverage(true), p1.TestSet.Coverage(true); got != want {
		t.Fatalf("coverage differs: %v vs %v", got, want)
	}
	c1, c2 := p1.ThetaCurve(false), p2.ThetaCurve(false)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("Θ curve differs at %d", i)
		}
	}
	if p1.SwitchRes.VectorsApplied != len(p1.TestSet.Patterns) {
		t.Fatalf("clean run applied %d/%d vectors", p1.SwitchRes.VectorsApplied, len(p1.TestSet.Patterns))
	}
}
