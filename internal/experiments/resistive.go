package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"defectsim/internal/fault"
	"defectsim/internal/switchsim"
	"defectsim/internal/textplot"
)

// ResistiveBridgeStudy (ABL-8) sweeps the bridge defect conductance from a
// hard short down to a weak resistive leak (the Renovell resistive-bridge
// model): as the bridge resistance rises, the defect stops overpowering
// the weaker driver, voltage detectability collapses — but the IDDQ screen
// keeps seeing the contention current. This quantifies a second mechanism
// (besides opens) behind Θmax < 1 and strengthens the paper's case for
// current testing.
type ResistiveBridgeStudy struct {
	// Conductances swept (normalized units; devices are 6–8).
	Gs []float64
	// ThetaVoltage[i] is the weighted bridge coverage by voltage testing
	// at Gs[i]; ThetaIDDQ[i] adds the current screen.
	ThetaVoltage []float64
	ThetaIDDQ    []float64
	// Simulated[i] is how many bridge faults actually ran a switch-level
	// campaign at Gs[i]; the remainder carried a verdict from a stronger
	// conductance (see the detected-fault-dropping note on
	// RunResistiveBridgeStudy).
	Simulated []int
}

// RunResistiveBridgeStudy re-simulates the pipeline's bridge faults under
// each bridge conductance. Opens are excluded (their behaviour does not
// depend on the bridge model), so the reported coverages are over bridge
// weight only.
//
// The sweep drops verdicts across conductance points instead of
// re-simulating every fault at every point: conductances are processed
// strongest-first, and a fault that voltage testing missed at conductance
// g is not re-simulated at any weaker g' < g — it carries the undetected
// verdict. This rests on the Renovell model's monotone-detectability
// premise (the same premise the study exists to illustrate): weakening the
// bridge only ever weakens the defect's side of every strength fight, so a
// bridge that cannot flip a node at g cannot flip one at g' < g. Since
// undetected faults are exactly the ones a campaign must carry through the
// entire vector set (detected faults already drop out at their detection
// vector), skipping them at the weak end — where almost nothing is
// voltage-detectable — removes most of the sweep's simulation work.
// Undecided faults (persistent oscillation, early stops) carry nothing and
// are conservatively re-simulated at every point. The IDDQ screen reads
// only fault-free node values, making it conductance-independent: it is
// computed once, on the first (full) campaign, and reused at every point.
// TestResistiveSweepDroppingMatchesExhaustive pins this sweep against the
// exhaustive one point by point.
func RunResistiveBridgeStudy(p *Pipeline, gs []float64) (*ResistiveBridgeStudy, error) {
	if len(gs) == 0 {
		gs = []float64{switchsim.BridgeG, 20, 5, 1.5, 0.3}
	}
	bridges := &fault.List{}
	for _, f := range p.Faults.Faults {
		if f.Kind == fault.KindBridge {
			bridges.Faults = append(bridges.Faults, f)
		}
	}
	vectors := p.Vectors()
	// The fault-free machine does not depend on the bridge conductance, so
	// the whole sweep shares one good trace — normally the one the pipeline
	// switch-sim stage already captured; at worst one extra capture here.
	trace, err := p.GoodTrace(context.Background())
	if err != nil {
		return nil, err
	}
	reg := p.Config.Obs.Metrics()
	st := &ResistiveBridgeStudy{
		Gs:           gs,
		ThetaVoltage: make([]float64, len(gs)),
		ThetaIDDQ:    make([]float64, len(gs)),
		Simulated:    make([]int, len(gs)),
	}

	// Verdict carrying makes the points order-dependent (strongest first),
	// so the sweep runs them sequentially and spends the pipeline's whole
	// worker budget inside each campaign instead of across points.
	order := make([]int, len(gs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return gs[order[a]] > gs[order[b]] })

	k := len(vectors)
	nb := len(bridges.Faults)
	candidate := make([]bool, nb) // simulate at the current point?
	for j := range candidate {
		candidate[j] = true
	}
	var iddqDet []bool // conductance-independent, from the first campaign
	pointDet := make([]bool, nb)
	combined := make([]bool, nb)
	sub := &fault.List{}
	var subIdx []int
	for _, oi := range order {
		sub.Faults = sub.Faults[:0]
		subIdx = subIdx[:0]
		for j, c := range candidate {
			if c {
				sub.Faults = append(sub.Faults, bridges.Faults[j])
				subIdx = append(subIdx, j)
			}
		}
		st.Simulated[oi] = len(sub.Faults)
		res, err := switchsim.SimulateFaultsTrace(context.Background(), p.Circuit, sub, vectors,
			p.Config.Workers, gs[oi], reg, trace)
		if err != nil {
			return nil, err
		}
		det := res.DetectedBy(k, false)
		clear(pointDet)
		for si, j := range subIdx {
			pointDet[j] = det[si]
			// Carry to the next weaker point: only faults this point
			// detected (or gave up on) are worth re-simulating there.
			candidate[j] = det[si] || res.Undecided[si]
		}
		if iddqDet == nil {
			iddqDet = make([]bool, nb)
			for si, j := range subIdx {
				iddqDet[j] = res.IDDQAt[si] > 0 && res.IDDQAt[si] <= k
			}
		}
		for j := range combined {
			combined[j] = pointDet[j] || iddqDet[j]
		}
		st.ThetaVoltage[oi] = bridges.WeightedCoverage(pointDet)
		st.ThetaIDDQ[oi] = bridges.WeightedCoverage(combined)
	}
	return st, nil
}

// Render prints the sweep.
func (st *ResistiveBridgeStudy) Render() string {
	var b strings.Builder
	b.WriteString("ABL-8  Resistive bridges: defect conductance vs detectability\n")
	tb := textplot.Table{Headers: []string{"bridge G", "Θ_bridge (voltage)", "Θ_bridge (+IDDQ)"}}
	for i, g := range st.Gs {
		name := fmt.Sprintf("%g", g)
		if g >= switchsim.BridgeG {
			name += " (hard short)"
		}
		tb.AddRow(name, fmt.Sprintf("%.4f", st.ThetaVoltage[i]), fmt.Sprintf("%.4f", st.ThetaIDDQ[i]))
	}
	b.WriteString(tb.Render())
	b.WriteString("(device drive conductances are 6–8; bridges below that stop flipping logic)\n")
	return b.String()
}
