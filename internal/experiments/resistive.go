package experiments

import (
	"context"
	"fmt"
	"strings"

	"defectsim/internal/fault"
	"defectsim/internal/switchsim"
	"defectsim/internal/textplot"
)

// ResistiveBridgeStudy (ABL-8) sweeps the bridge defect conductance from a
// hard short down to a weak resistive leak (the Renovell resistive-bridge
// model): as the bridge resistance rises, the defect stops overpowering
// the weaker driver, voltage detectability collapses — but the IDDQ screen
// keeps seeing the contention current. This quantifies a second mechanism
// (besides opens) behind Θmax < 1 and strengthens the paper's case for
// current testing.
type ResistiveBridgeStudy struct {
	// Conductances swept (normalized units; devices are 6–8).
	Gs []float64
	// ThetaVoltage[i] is the weighted bridge coverage by voltage testing
	// at Gs[i]; ThetaIDDQ[i] adds the current screen.
	ThetaVoltage []float64
	ThetaIDDQ    []float64
}

// RunResistiveBridgeStudy re-simulates the pipeline's bridge faults under
// each bridge conductance. Opens are excluded (their behaviour does not
// depend on the bridge model), so the reported coverages are over bridge
// weight only.
func RunResistiveBridgeStudy(p *Pipeline, gs []float64) (*ResistiveBridgeStudy, error) {
	if len(gs) == 0 {
		gs = []float64{switchsim.BridgeG, 20, 5, 1.5, 0.3}
	}
	bridges := &fault.List{}
	for _, f := range p.Faults.Faults {
		if f.Kind == fault.KindBridge {
			bridges.Faults = append(bridges.Faults, f)
		}
	}
	vectors := p.Vectors()
	// The fault-free machine does not depend on the bridge conductance, so
	// the whole sweep shares one good trace — normally the one the pipeline
	// switch-sim stage already captured; at worst one extra capture here.
	trace, err := p.GoodTrace(context.Background())
	if err != nil {
		return nil, err
	}
	reg := p.Config.Obs.Metrics()
	st := &ResistiveBridgeStudy{
		Gs:           gs,
		ThetaVoltage: make([]float64, len(gs)),
		ThetaIDDQ:    make([]float64, len(gs)),
	}
	// The per-conductance campaigns are independent, so the sweep spends
	// the pipeline's worker budget across conductances; each inner
	// switch-level campaign then runs single-worker to avoid nesting
	// pools. Results are identical to a serial sweep.
	err = forEach(context.Background(), p.Config.Workers, len(gs), func(i int) error {
		res, err := switchsim.SimulateFaultsTrace(context.Background(), p.Circuit, bridges, vectors, 1, gs[i], reg, trace)
		if err != nil {
			return err
		}
		k := len(vectors)
		st.ThetaVoltage[i] = bridges.WeightedCoverage(res.DetectedBy(k, false))
		st.ThetaIDDQ[i] = bridges.WeightedCoverage(res.DetectedBy(k, true))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// Render prints the sweep.
func (st *ResistiveBridgeStudy) Render() string {
	var b strings.Builder
	b.WriteString("ABL-8  Resistive bridges: defect conductance vs detectability\n")
	tb := textplot.Table{Headers: []string{"bridge G", "Θ_bridge (voltage)", "Θ_bridge (+IDDQ)"}}
	for i, g := range st.Gs {
		name := fmt.Sprintf("%g", g)
		if g >= switchsim.BridgeG {
			name += " (hard short)"
		}
		tb.AddRow(name, fmt.Sprintf("%.4f", st.ThetaVoltage[i]), fmt.Sprintf("%.4f", st.ThetaIDDQ[i]))
	}
	b.WriteString(tb.Render())
	b.WriteString("(device drive conductances are 6–8; bridges below that stop flipping logic)\n")
	return b.String()
}
