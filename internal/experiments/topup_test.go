package experiments

import (
	"strings"
	"testing"

	"defectsim/internal/netlist"
)

func TestBridgeTopUpRaisesTheta(t *testing.T) {
	// Use a short random-only test budget so plenty of bridges stay
	// undetected for the top-up to attack.
	cfg := DefaultConfig()
	cfg.RandomVectors = 8
	p, err := Run(netlist.Comparator(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := RunBridgeTopUp(p, 200)
	if err != nil {
		t.Fatal(err)
	}
	if tu.Targeted == 0 {
		t.Skip("campaign left no netlist-visible bridges undetected")
	}
	if tu.Generated == 0 {
		t.Fatal("constrained ATPG produced no candidates")
	}
	if tu.Verified == 0 {
		t.Fatal("no candidate survived switch-level verification")
	}
	if tu.ThetaAfter < tu.ThetaBefore {
		t.Fatalf("top-up cannot lower Θ: %.4f → %.4f", tu.ThetaBefore, tu.ThetaAfter)
	}
	if tu.NewlyDetected == 0 {
		t.Fatal("verified vectors must detect new faults in the re-scored campaign")
	}
	if tu.ResidualAfter > tu.ResidualBefore {
		t.Fatal("residual DL cannot rise")
	}
	if !strings.Contains(tu.Render(), "ABL-5") {
		t.Fatal("render")
	}
}

func TestBridgeTopUpNoTargets(t *testing.T) {
	// With the full test set on a tiny circuit, few or no signal bridges
	// remain; the top-up must handle the empty case gracefully.
	cfg := DefaultConfig()
	cfg.RandomVectors = 64
	p, err := Run(netlist.C17(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := RunBridgeTopUp(p, 0) // zero budget: no targets at all
	if err != nil {
		t.Fatal(err)
	}
	if tu.Targeted != 0 || tu.ExtraVectors != 0 {
		t.Fatalf("zero budget must do nothing: %+v", tu)
	}
	if tu.ThetaAfter != tu.ThetaBefore {
		t.Fatal("Θ must be unchanged")
	}
}
