package experiments

import (
	"strings"
	"testing"

	"defectsim/internal/netlist"
)

func TestBridgeTopUpRaisesTheta(t *testing.T) {
	// Use a short random-only test budget so plenty of bridges stay
	// undetected for the top-up to attack.
	cfg := DefaultConfig()
	cfg.RandomVectors = 8
	p, err := Run(netlist.Comparator(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := RunBridgeTopUp(p, 200)
	if err != nil {
		t.Fatal(err)
	}
	if tu.Targeted == 0 {
		t.Skip("campaign left no netlist-visible bridges undetected")
	}
	if tu.Generated == 0 {
		t.Fatal("constrained ATPG produced no candidates")
	}
	if tu.Verified == 0 {
		t.Fatal("no candidate survived switch-level verification")
	}
	if tu.ThetaAfter < tu.ThetaBefore {
		t.Fatalf("top-up cannot lower Θ: %.4f → %.4f", tu.ThetaBefore, tu.ThetaAfter)
	}
	if tu.NewlyDetected == 0 {
		t.Fatal("verified vectors must detect new faults in the re-scored campaign")
	}
	if tu.ResidualAfter > tu.ResidualBefore {
		t.Fatal("residual DL cannot rise")
	}
	if !strings.Contains(tu.Render(), "ABL-5") {
		t.Fatal("render")
	}
}

// TestBridgeTopUpVoltageOnlyAccounting locks the documented Θ accounting
// of the top-up (see RunBridgeTopUp): both ThetaBefore and ThetaAfter are
// voltage-only — IDDQ credit is excluded from both sides of the delta, so
// the study measures exactly what the extra voltage vectors buy, and IDDQ
// detections that needed no new vectors (the ABL-2 ablation) are never
// double-counted as top-up gains.
func TestBridgeTopUpVoltageOnlyAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RandomVectors = 8
	p, err := Run(netlist.Comparator(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := RunBridgeTopUp(p, 200)
	if err != nil {
		t.Fatal(err)
	}
	thetaV := p.ThetaCurve(false).Final()
	thetaI := p.ThetaCurve(true).Final()
	if tu.ThetaBefore != thetaV {
		t.Fatalf("ThetaBefore = %.6f, voltage-only ThetaCurve(false) = %.6f", tu.ThetaBefore, thetaV)
	}
	if thetaI > thetaV {
		// This campaign has IDDQ-only detections, so the accounting choice
		// is observable: the top-up baseline must sit below the IDDQ curve.
		if tu.ThetaBefore >= thetaI {
			t.Fatalf("ThetaBefore = %.6f includes IDDQ credit (Θ_iddq = %.6f)", tu.ThetaBefore, thetaI)
		}
	} else {
		t.Log("campaign produced no IDDQ-only detections; baseline check is vacuous here")
	}
	// NewlyDetected counts only voltage detections of previously
	// voltage-undetected faults; it can never exceed the faults the
	// voltage campaign left undetected.
	undetV := 0
	for _, d := range p.SwitchRes.DetectedAt {
		if d == 0 {
			undetV++
		}
	}
	if tu.NewlyDetected > undetV {
		t.Fatalf("NewlyDetected %d exceeds voltage-undetected faults %d", tu.NewlyDetected, undetV)
	}
}

func TestBridgeTopUpNoTargets(t *testing.T) {
	// With the full test set on a tiny circuit, few or no signal bridges
	// remain; the top-up must handle the empty case gracefully.
	cfg := DefaultConfig()
	cfg.RandomVectors = 64
	p, err := Run(netlist.C17(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := RunBridgeTopUp(p, 0) // zero budget: no targets at all
	if err != nil {
		t.Fatal(err)
	}
	if tu.Targeted != 0 || tu.ExtraVectors != 0 {
		t.Fatalf("zero budget must do nothing: %+v", tu)
	}
	if tu.ThetaAfter != tu.ThetaBefore {
		t.Fatal("Θ must be unchanged")
	}
}
