package experiments

import (
	"fmt"
	"math"
	"strings"

	"defectsim/internal/coverage"
	"defectsim/internal/dlmodel"
	"defectsim/internal/fit"
	"defectsim/internal/stats"
	"defectsim/internal/textplot"
)

// Fig1 is the paper's figure 1: the analytic coverage-growth laws T(k) and
// Θ(k) for σ_T = e³, σ_Θ = e^1.5, Θmax = 0.96.
type Fig1 struct {
	SigmaT, SigmaTheta, ThetaMax float64
	Ks                           []float64
	T, Theta                     []float64
}

// Figure1 evaluates the curves on a log-spaced k grid up to 10⁶.
func Figure1() *Fig1 {
	f := &Fig1{SigmaT: math.Exp(3), SigmaTheta: math.Exp(1.5), ThetaMax: 0.96}
	for e := 0.0; e <= 6.0; e += 0.125 {
		k := math.Pow(10, e)
		f.Ks = append(f.Ks, k)
		f.T = append(f.T, coverage.GrowthT(k, f.SigmaT))
		f.Theta = append(f.Theta, coverage.Growth(k, f.SigmaTheta, f.ThetaMax))
	}
	return f
}

// R returns the susceptibility ratio of the plotted pair.
func (f *Fig1) R() float64 { return coverage.RFromSigmas(f.SigmaT, f.SigmaTheta) }

// Render draws the figure.
func (f *Fig1) Render() string {
	p := textplot.Plot{
		Title:  fmt.Sprintf("Fig.1  T(k) and Θ(k): σ_T=e³, σ_Θ=e^1.5, Θmax=%.2f (R=%.2g)", f.ThetaMax, f.R()),
		XLabel: "k (random vectors)", YLabel: "coverage", XLog: true,
	}
	p.Add("T(k) stuck-at", 'T', f.Ks, f.T)
	p.Add("Θ(k) weighted realistic", 'o', f.Ks, f.Theta)
	return p.Render()
}

// Fig2 is the paper's figure 2: DL(T) under Williams–Brown versus the
// proposed model with R = 2, Θmax = 0.96 at Y = 0.75.
type Fig2 struct {
	Y      float64
	Params dlmodel.Params
	Ts     []float64
	WB     []float64
	Model  []float64
}

// Figure2 evaluates both curves on a uniform T grid.
func Figure2() *Fig2 {
	f := &Fig2{Y: 0.75, Params: dlmodel.Params{R: 2, ThetaMax: 0.96}}
	for t := 0.0; t <= 1.0+1e-9; t += 0.02 {
		if t > 1 {
			t = 1
		}
		f.Ts = append(f.Ts, t)
		f.WB = append(f.WB, dlmodel.WilliamsBrown(f.Y, t))
		f.Model = append(f.Model, f.Params.DL(f.Y, t))
	}
	return f
}

// Render draws the figure.
func (f *Fig2) Render() string {
	p := textplot.Plot{
		Title: fmt.Sprintf("Fig.2  DL(T) at Y=%.2f: Williams–Brown vs R=%.3g, Θmax=%.3g",
			f.Y, f.Params.R, f.Params.ThetaMax),
		XLabel: "stuck-at coverage T", YLabel: "defect level",
	}
	p.Add("Williams-Brown", 'w', f.Ts, f.WB)
	p.Add("proposed (eq.11)", 'o', f.Ts, f.Model)
	return p.Render()
}

// Fig3 is the paper's figure 3: the histogram of realistic fault weights
// extracted from the layout.
type Fig3 struct {
	Hist    *stats.LogHistogram
	Summary stats.Summary
}

// Figure3 bins the pipeline's fault weights.
func Figure3(p *Pipeline) *Fig3 {
	w := p.Weights()
	return &Fig3{Hist: stats.NewLogHistogram(w, 2), Summary: stats.Summarize(w)}
}

// Render draws the histogram.
func (f *Fig3) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.3  Histogram of fault weights (%d faults)\n", f.Hist.N())
	b.WriteString(f.Hist.Render(48))
	fmt.Fprintf(&b, "weights: %s\n", f.Summary)
	return b.String()
}

// Fig4 is the paper's figure 4: coverage curves T(k), Θ(k), Γ(k) for the
// benchmark circuit, plus the susceptibilities fitted to each.
type Fig4 struct {
	T, Theta, Gamma                coverage.Curve
	SigmaT, SigmaTheta, SigmaGamma float64
	R                              float64 // ln σ_T / ln σ_Θ (eq. 10)
}

// Figure4 builds the three empirical curves and fits their
// susceptibilities.
func Figure4(p *Pipeline) *Fig4 {
	f := &Fig4{
		T:     p.TCurve(),
		Theta: p.ThetaCurve(false),
		Gamma: p.GammaCurve(),
	}
	f.SigmaT = coverage.FitSigma(f.T, 1) // redundant faults excluded ⇒ Cmax = 1
	f.SigmaTheta = coverage.FitSigma(f.Theta, 0)
	f.SigmaGamma = coverage.FitSigma(f.Gamma, 0)
	if f.SigmaT > 1 && f.SigmaTheta > 1 {
		f.R = coverage.RFromSigmas(f.SigmaT, f.SigmaTheta)
	}
	return f
}

// Render draws the figure.
func (f *Fig4) Render() string {
	p := textplot.Plot{
		Title:  "Fig.4  Fault coverage vs number of test vectors k",
		XLabel: "k", YLabel: "coverage", XLog: true,
	}
	add := func(name string, marker byte, c coverage.Curve) {
		xs := make([]float64, len(c))
		ys := make([]float64, len(c))
		for i, pt := range c {
			xs[i], ys[i] = pt.K, pt.C
		}
		p.Add(name, marker, xs, ys)
	}
	add("T(k) stuck-at", 'T', f.T)
	add("Θ(k) weighted realistic", 'o', f.Theta)
	add("Γ(k) unweighted realistic", '#', f.Gamma)
	s := p.Render()
	s += fmt.Sprintf("fitted susceptibilities: σ_T=e^%.2f  σ_Θ=e^%.2f  σ_Γ=e^%.2f  →  R=%.2f\n",
		math.Log(f.SigmaT), math.Log(f.SigmaTheta), math.Log(f.SigmaGamma), f.R)
	return s
}

// Fig5 is the paper's figure 5: simulated fallout points (T(k), DL(Θ(k)))
// against the Williams–Brown curve and the fitted proposed model (paper
// fit: R = 1.9, Θmax = 0.96).
type Fig5 struct {
	Y      float64
	Points []fit.DLPoint
	Fitted dlmodel.Params
}

// Figure5 pairs the stuck-at and weighted-realistic curves through k and
// fits (R, Θmax).
func Figure5(p *Pipeline) *Fig5 {
	f := &Fig5{Y: p.Yield}
	tCurve := p.TCurve()
	thCurve := p.ThetaCurve(false)
	for i := range tCurve {
		dl := dlmodel.Weighted(p.Yield, thCurve[i].C)
		f.Points = append(f.Points, fit.DLPoint{T: tCurve[i].C, DL: dl})
	}
	f.Fitted = fit.FitParams(f.Points, p.Yield)
	return f
}

// MaxWBDeviation returns the largest factor by which Williams–Brown
// overestimates the simulated defect level in the mid-coverage range — the
// concavity the paper observes in actual fallout data.
func (f *Fig5) MaxWBDeviation() float64 {
	worst := 1.0
	for _, pt := range f.Points {
		if pt.T < 0.3 || pt.T > 0.95 || pt.DL <= 0 {
			continue
		}
		if r := dlmodel.WilliamsBrown(f.Y, pt.T) / pt.DL; r > worst {
			worst = r
		}
	}
	return worst
}

// Render draws the figure.
func (f *Fig5) Render() string {
	p := textplot.Plot{
		Title: fmt.Sprintf("Fig.5  DL vs stuck-at coverage T (Y=%.3f); fit: R=%.2f Θmax=%.3f",
			f.Y, f.Fitted.R, f.Fitted.ThetaMax),
		XLabel: "T", YLabel: "DL",
	}
	var ts, dls, wbs, fits []float64
	for _, pt := range f.Points {
		ts = append(ts, pt.T)
		dls = append(dls, pt.DL)
		wbs = append(wbs, dlmodel.WilliamsBrown(f.Y, pt.T))
		fits = append(fits, f.Fitted.DL(f.Y, pt.T))
	}
	p.Add("simulated (T(k), DL(Θ(k)))", 'o', ts, dls)
	p.Add("Williams-Brown", 'w', ts, wbs)
	p.Add("fitted eq.11", '+', ts, fits)
	s := p.Render()
	s += fmt.Sprintf("max W-B overestimation in 0.3≤T≤0.95: %.1f×\n", f.MaxWBDeviation())
	return s
}

// Fig6 is the paper's figure 6: the same defect levels plotted against the
// unweighted coverage Γ, compared with DL = 1 − Y^(1−Γ) — showing that a
// complete but unweighted fault set still cannot predict DL.
type Fig6 struct {
	Y      float64
	Points []fit.DLPoint // (Γ(k), DL(Θ(k)))
}

// Figure6 builds the unweighted-coverage fallout plot.
func Figure6(p *Pipeline) *Fig6 {
	f := &Fig6{Y: p.Yield}
	gCurve := p.GammaCurve()
	thCurve := p.ThetaCurve(false)
	for i := range gCurve {
		dl := dlmodel.Weighted(p.Yield, thCurve[i].C)
		f.Points = append(f.Points, fit.DLPoint{T: gCurve[i].C, DL: dl})
	}
	return f
}

// MaxDeviation returns the largest ratio between the unweighted
// Williams–Brown prediction DL(Γ) and the actual (weighted) defect level
// over the plotted points.
func (f *Fig6) MaxDeviation() float64 {
	worst := 1.0
	for _, pt := range f.Points {
		if pt.DL <= 0 || pt.T >= 1 {
			continue
		}
		pred := dlmodel.Weighted(f.Y, pt.T)
		r := pred / pt.DL
		if r < 1 {
			r = 1 / r
		}
		if r > worst {
			worst = r
		}
	}
	return worst
}

// Render draws the figure.
func (f *Fig6) Render() string {
	p := textplot.Plot{
		Title:  fmt.Sprintf("Fig.6  DL vs unweighted coverage Γ (Y=%.3f)", f.Y),
		XLabel: "Γ", YLabel: "DL",
	}
	var gs, dls, preds []float64
	for _, pt := range f.Points {
		gs = append(gs, pt.T)
		dls = append(dls, pt.DL)
		preds = append(preds, dlmodel.Weighted(f.Y, pt.T))
	}
	p.Add("simulated (Γ(k), DL(Θ(k)))", 'o', gs, dls)
	p.Add("DL(Γ) = 1 - Y^(1-Γ)", 'w', gs, preds)
	s := p.Render()
	s += fmt.Sprintf("max deviation of unweighted prediction: %.1f×\n", f.MaxDeviation())
	return s
}

// Example1 reproduces §2 Example 1: required stuck-at coverage for a
// 100 ppm defect level at Y = 0.75, Θmax = 1, R = 2.1, against the
// Williams–Brown requirement.
type Example1 struct {
	Y, TargetDL    float64
	Params         dlmodel.Params
	RequiredT      float64
	WilliamsBrownT float64
}

// RunExample1 evaluates the worked example.
func RunExample1() (*Example1, error) {
	e := &Example1{Y: 0.75, TargetDL: 100e-6, Params: dlmodel.Params{R: 2.1, ThetaMax: 1}}
	t, err := e.Params.RequiredT(e.Y, e.TargetDL)
	if err != nil {
		return nil, err
	}
	e.RequiredT = t
	e.WilliamsBrownT = dlmodel.WilliamsBrownRequiredT(e.Y, e.TargetDL)
	return e, nil
}

// Render prints the example.
func (e *Example1) Render() string {
	return fmt.Sprintf(
		"Example 1: Y=%.2f, Θmax=%g, R=%g, target DL=%.0f ppm\n"+
			"  required T (proposed model) : %.2f%%   (paper: 97.7%%)\n"+
			"  required T (Williams-Brown) : %.2f%%   (paper: 99.97%%)\n",
		e.Y, e.Params.ThetaMax, e.Params.R, e.TargetDL*1e6,
		100*e.RequiredT, 100*e.WilliamsBrownT)
}

// Example2 reproduces §2 Example 2: the residual defect level at 100%
// stuck-at coverage when Θmax = 0.99 and R = 1, against Williams–Brown's
// zero.
type Example2 struct {
	Y      float64
	Params dlmodel.Params
	DL     float64
	WB     float64
}

// RunExample2 evaluates the worked example.
func RunExample2() *Example2 {
	e := &Example2{Y: 0.75, Params: dlmodel.Params{R: 1, ThetaMax: 0.99}}
	e.DL = e.Params.DL(e.Y, 1)
	e.WB = dlmodel.WilliamsBrown(e.Y, 1)
	return e
}

// Render prints the example.
func (e *Example2) Render() string {
	return fmt.Sprintf(
		"Example 2: Y=%.2f, Θmax=%g, R=%g, T=100%%\n"+
			"  DL (proposed model)  : %.0f ppm   (paper prints ≈2.9e3 ppm class)\n"+
			"  DL (Williams-Brown)  : %.0f ppm\n"+
			"  residual defect level: %.0f ppm\n",
		e.Y, e.Params.ThetaMax, e.Params.R,
		e.DL*1e6, e.WB*1e6, e.Params.ResidualDL(e.Y)*1e6)
}

// AgrawalComparison fits the Agrawal et al. n parameter to the same fallout
// points as figure 5 (TAB-A of DESIGN.md) and reports both models'
// goodness of fit in log-DL space.
type AgrawalComparison struct {
	Y          float64
	N          float64
	Proposed   dlmodel.Params
	RMSLogA    float64 // Agrawal residual
	RMSLogProp float64 // proposed-model residual
}

// RunAgrawalComparison fits both models to the pipeline's fallout points.
func RunAgrawalComparison(p *Pipeline) *AgrawalComparison {
	f5 := Figure5(p)
	a := &AgrawalComparison{Y: p.Yield, Proposed: f5.Fitted}
	a.N = fit.FitAgrawalN(f5.Points, p.Yield)
	var sa, sp float64
	n := 0
	clampLog := func(v float64) float64 {
		// The Agrawal model is exactly zero at T = 1, where the simulated
		// defect level is the positive residual — the incompleteness eq. 2
		// cannot express. Clamp so the residual stays finite and the
		// failure shows up as a large (not infinite) error.
		if v < 1e-12 {
			v = 1e-12
		}
		return math.Log(v)
	}
	for _, pt := range f5.Points {
		if pt.DL <= 0 {
			continue
		}
		da := clampLog(dlmodel.Agrawal(a.Y, pt.T, a.N)) - math.Log(pt.DL)
		dp := clampLog(f5.Fitted.DL(a.Y, pt.T)) - math.Log(pt.DL)
		sa += da * da
		sp += dp * dp
		n++
	}
	if n > 0 {
		a.RMSLogA = math.Sqrt(sa / float64(n))
		a.RMSLogProp = math.Sqrt(sp / float64(n))
	}
	return a
}

// Render prints the comparison.
func (a *AgrawalComparison) Render() string {
	return fmt.Sprintf(
		"Agrawal model comparison (Y=%.3f)\n"+
			"  fitted n (avg faults per faulty chip): %.2f\n"+
			"  RMS log-DL residual, Agrawal eq.2    : %.3f\n"+
			"  RMS log-DL residual, proposed eq.11  : %.3f (R=%.2f Θmax=%.3f)\n",
		a.Y, a.N, a.RMSLogA, a.RMSLogProp, a.Proposed.R, a.Proposed.ThetaMax)
}

// IDDQAblation (ABL-2) compares the realistic coverage ceiling under static
// voltage testing alone versus voltage + IDDQ screening of bridges —
// quantifying the paper's conclusion that "more sophisticated detection
// techniques, like delay and/or current testing" shrink the residual
// defect level.
type IDDQAblation struct {
	Y                       float64
	ThetaVoltage, ThetaIDDQ float64
	ResidualV, ResidualI    float64
}

// RunIDDQAblation evaluates both detection regimes on the same campaign.
func RunIDDQAblation(p *Pipeline) *IDDQAblation {
	a := &IDDQAblation{Y: p.Yield}
	a.ThetaVoltage = p.ThetaCurve(false).Final()
	a.ThetaIDDQ = p.ThetaCurve(true).Final()
	a.ResidualV = dlmodel.Params{R: 1, ThetaMax: a.ThetaVoltage}.ResidualDL(p.Yield)
	a.ResidualI = dlmodel.Params{R: 1, ThetaMax: a.ThetaIDDQ}.ResidualDL(p.Yield)
	return a
}

// Render prints the ablation.
func (a *IDDQAblation) Render() string {
	return fmt.Sprintf(
		"ABL-2  detection-technique ablation (Y=%.3f)\n"+
			"  Θ ceiling, voltage only   : %.4f  → residual DL %.0f ppm\n"+
			"  Θ ceiling, voltage + IDDQ : %.4f  → residual DL %.0f ppm\n",
		a.Y, a.ThetaVoltage, a.ResidualV*1e6, a.ThetaIDDQ, a.ResidualI*1e6)
}
