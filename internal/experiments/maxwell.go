package experiments

import (
	"fmt"

	"defectsim/internal/atpg"
	"defectsim/internal/dlmodel"
	"defectsim/internal/switchsim"
)

// MaxwellAitkenStudy (ABL-7) reproduces the phenomenon of the paper's
// experimental reference [4] (Maxwell & Aitken, "The Effect of Different
// Test Sets on Quality Level Prediction: When is 80% Better than 90%?"):
// two test sets with *identical* stuck-at fault coverage can deliver
// different product quality, because the longer set catches more
// non-target (realistic) faults along the way. We compare the pipeline's
// full test set against its reverse-order static compaction — same
// collapsed stuck-at coverage by construction — and measure the realistic
// coverage Θ and the shipped defect level under each.
type MaxwellAitkenStudy struct {
	FullVectors, CompactVectors int
	StuckAtCoverage             float64
	ThetaFull, ThetaCompact     float64
	DLFull, DLCompact           float64
}

// RunMaxwellAitken compacts the pipeline's test set and re-runs the
// switch-level campaign on the compacted vectors.
func RunMaxwellAitken(p *Pipeline) (*MaxwellAitkenStudy, error) {
	st := &MaxwellAitkenStudy{
		FullVectors:     len(p.TestSet.Patterns),
		StuckAtCoverage: p.TestSet.Coverage(true),
		ThetaFull:       p.ThetaCurve(false).Final(),
	}
	st.DLFull = dlmodel.Weighted(p.Yield, st.ThetaFull)

	compacted, err := atpg.Compact(p.Netlist, p.StuckAt, p.TestSet.Patterns)
	if err != nil {
		return nil, err
	}
	st.CompactVectors = len(compacted)

	vectors := make([]switchsim.Vector, len(compacted))
	for i, pat := range compacted {
		v := make(switchsim.Vector, len(pat))
		for j, b := range pat {
			v[j] = switchsim.Val(b)
		}
		vectors[i] = v
	}
	res, err := switchsim.SimulateFaults(p.Circuit, p.Faults, vectors)
	if err != nil {
		return nil, err
	}
	det := res.DetectedBy(len(vectors), false)
	st.ThetaCompact = p.Faults.WeightedCoverage(det)
	st.DLCompact = dlmodel.Weighted(p.Yield, st.ThetaCompact)
	return st, nil
}

// Render prints the study.
func (st *MaxwellAitkenStudy) Render() string {
	return fmt.Sprintf(
		"ABL-7  Same stuck-at coverage, different quality (Maxwell–Aitken, ref. [4])\n"+
			"  stuck-at coverage (both sets)  : %.4f\n"+
			"  full test set                  : %d vectors, Θ = %.4f, DL = %.0f ppm\n"+
			"  compacted (coverage-preserving): %d vectors, Θ = %.4f, DL = %.0f ppm\n"+
			"  the compacted set ships %.0f%% more defects at identical stuck-at\n"+
			"  coverage — fault coverage alone does not determine quality.\n",
		st.StuckAtCoverage,
		st.FullVectors, st.ThetaFull, 1e6*st.DLFull,
		st.CompactVectors, st.ThetaCompact, 1e6*st.DLCompact,
		100*(st.DLCompact/st.DLFull-1))
}
