package experiments

import (
	"strings"
	"testing"

	"defectsim/internal/netlist"
)

func TestLotValidationAgreesWithModel(t *testing.T) {
	p, err := Run(netlist.RippleAdder(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := RunLotValidation(p, 200000, 1)
	if len(v.Rows) == 0 {
		t.Fatal("no rows")
	}
	// The lot simulator shares the models' independence assumptions, so
	// the empirical DL must track the closed form closely.
	if v.MaxErr > 0.10 {
		t.Fatalf("empirical vs model deviation %.1f%% too large", 100*v.MaxErr)
	}
	// Monotone: empirical DL decreases with k (more vectors, fewer escapes),
	// modulo sampling noise — check first vs last.
	first, last := v.Rows[0], v.Rows[len(v.Rows)-1]
	if last.EmpiricalDL >= first.EmpiricalDL {
		t.Fatalf("DL must fall with test length: %g → %g", first.EmpiricalDL, last.EmpiricalDL)
	}
	if !strings.Contains(v.Render(), "VAL-1") {
		t.Fatal("render")
	}
}

func TestInjectionValidationOnPipeline(t *testing.T) {
	p, err := Run(netlist.RippleAdder(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := RunInjectionValidation(p, 20000, 2)
	if !v.Complete {
		t.Fatalf("extraction incomplete: %s", v.CompleteErr)
	}
	if v.Bridges == 0 || v.Opens == 0 || v.Benign == 0 {
		t.Fatalf("implausible effect mix: %+v", v)
	}
	if v.TopQuartile < 0.5 {
		t.Fatalf("bridge hits poorly correlated with weights: %.2f", v.TopQuartile)
	}
	if !strings.Contains(v.Render(), "COMPLETE") {
		t.Fatal("render")
	}
}

func TestDelayAblation(t *testing.T) {
	p, err := Run(netlist.RippleAdder(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunDelayAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.StuckAtCurve {
		if a.TransitionCurve[i].C > a.StuckAtCurve[i].C+1e-12 {
			t.Fatalf("transition coverage exceeds stuck-at at k=%g", a.StuckAtCurve[i].K)
		}
	}
	if a.TransitionCurve.Final() <= 0.3 {
		t.Fatalf("transition coverage %.3f implausibly low", a.TransitionCurve.Final())
	}
	if !strings.Contains(a.Render(), "ABL-4") {
		t.Fatal("render")
	}
}

func TestFaultKindBreakdown(t *testing.T) {
	p, err := Run(netlist.RippleAdder(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := FaultKindBreakdown(p)
	for _, want := range []string{"bridge", "open-input", "open-driver"} {
		if !strings.Contains(s, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, s)
		}
	}
}

func TestPathDelayStudy(t *testing.T) {
	p, err := Run(netlist.RippleAdder(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunPathDelayStudy(p, 40)
	if err != nil {
		t.Fatal(err)
	}
	if st.K != 40 {
		t.Fatalf("enumerated %d paths", st.K)
	}
	if st.Longest <= 0 || st.Longest > st.CriticalDelay+1e-9 {
		t.Fatalf("longest %g vs critical %g", st.Longest, st.CriticalDelay)
	}
	if st.Coverage < 0 || st.Coverage > 1 {
		t.Fatalf("coverage %g", st.Coverage)
	}
	if !strings.Contains(st.Render(), "ABL-6") {
		t.Fatal("render")
	}
}

func TestMaxwellAitkenStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full c432-class campaigns")
	}
	p, err := Run(netlist.C432Class(1994), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunMaxwellAitken(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.CompactVectors >= st.FullVectors {
		t.Fatalf("compaction removed nothing: %d vs %d", st.CompactVectors, st.FullVectors)
	}
	if st.ThetaCompact > st.ThetaFull+1e-12 {
		t.Fatalf("a subset cannot cover more: Θ %.4f vs %.4f", st.ThetaCompact, st.ThetaFull)
	}
	// The headline effect: equal stuck-at coverage, higher defect level.
	if st.DLCompact <= st.DLFull {
		t.Fatalf("compacted set must ship more defects: %.0f vs %.0f ppm",
			1e6*st.DLCompact, 1e6*st.DLFull)
	}
	if !strings.Contains(st.Render(), "ABL-7") {
		t.Fatal("render")
	}
}

func TestSuiteStudy(t *testing.T) {
	st, err := RunSuite([]*netlist.Netlist{
		netlist.C17(),
		netlist.RippleAdder(3),
	}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rows) != 2 {
		t.Fatal("row count")
	}
	for _, r := range st.Rows {
		if r.ThetaFinal <= 0 || r.ThetaFinal >= 1 {
			t.Fatalf("%s: Θ(final) = %g", r.Name, r.ThetaFinal)
		}
		if r.ResidualPPM <= 0 {
			t.Fatalf("%s: residual must be positive under voltage testing", r.Name)
		}
		if err := r.Fitted.Validate(); err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
	}
	if !strings.Contains(st.Render(), "c17") {
		t.Fatal("render")
	}
}

func TestResistiveBridgeStudy(t *testing.T) {
	p, err := Run(netlist.RippleAdder(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunResistiveBridgeStudy(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := len(st.Gs)
	if n < 3 {
		t.Fatal("sweep too short")
	}
	// Voltage detectability must collapse as the bridge gets resistive.
	if st.ThetaVoltage[n-1] >= st.ThetaVoltage[0] {
		t.Fatalf("weak bridges must evade voltage testing: %.4f vs %.4f",
			st.ThetaVoltage[n-1], st.ThetaVoltage[0])
	}
	for i := range st.Gs {
		if st.ThetaIDDQ[i] < st.ThetaVoltage[i]-1e-12 {
			t.Fatal("IDDQ cannot cover less than voltage alone")
		}
	}
	// The IDDQ screen is conductance-independent in this model: its
	// coverage floor must hold even for the weakest bridge.
	if st.ThetaIDDQ[n-1] < st.ThetaIDDQ[0]*0.95 {
		t.Fatalf("IDDQ coverage should persist for resistive bridges: %.4f vs %.4f",
			st.ThetaIDDQ[n-1], st.ThetaIDDQ[0])
	}
	if !strings.Contains(st.Render(), "ABL-8") {
		t.Fatal("render")
	}
}

func TestAddObservationPoints(t *testing.T) {
	nl := netlist.C432Class(4)
	dft, err := AddObservationPoints(nl, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dft.POs) != len(nl.POs)+5 {
		t.Fatalf("PO count %d, want %d", len(dft.POs), len(nl.POs)+5)
	}
	if len(dft.Gates) != len(nl.Gates) {
		t.Fatal("logic must be unchanged")
	}
	// The original must not be mutated.
	if len(nl.POs) == len(dft.POs) {
		t.Fatal("copy aliasing")
	}
	// Functional equivalence on the original POs.
	pis := make([]uint64, len(nl.PIs))
	for i := range pis {
		pis[i] = uint64(i % 2)
	}
	v1, _ := nl.Eval(pis)
	v2, _ := dft.Eval(pis)
	for i := range nl.POs {
		if v1[nl.POs[i]] != v2[dft.POs[i]] {
			t.Fatal("observation points changed the function")
		}
	}
}

func TestTestPointStudy(t *testing.T) {
	p, err := Run(netlist.Comparator(5), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunTestPointStudy(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Observation points can only help observability: Θ must not fall
	// (small layout perturbations allowed for — use a loose margin).
	if st.DftTheta < st.BaseTheta-0.02 {
		t.Fatalf("observation points lowered Θ: %.4f → %.4f", st.BaseTheta, st.DftTheta)
	}
	if !strings.Contains(st.Render(), "DFT-1") {
		t.Fatal("render")
	}
}
