package experiments

import (
	"strings"
	"testing"

	"defectsim/internal/netlist"
)

func TestDiagnosisStudyLocalizesBridges(t *testing.T) {
	p, err := Run(netlist.RippleAdder(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunDiagnosisStudy(p, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bridges < 20 {
		t.Fatalf("too few diagnosable bridges: %d", st.Bridges)
	}
	rate := float64(st.Localized) / float64(st.Bridges)
	if rate < 0.7 {
		t.Fatalf("localization rate %.0f%% too low", 100*rate)
	}
	if st.MeanRank < 1 || st.MeanRank > float64(st.TopK) {
		t.Fatalf("mean rank %.1f outside [1,%d]", st.MeanRank, st.TopK)
	}
	if !strings.Contains(st.Render(), "VAL-3") {
		t.Fatal("render")
	}
}

func TestDiagnosisStudyBudget(t *testing.T) {
	p, err := Run(netlist.C17(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunDiagnosisStudy(p, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bridges > 3 {
		t.Fatalf("budget exceeded: %d", st.Bridges)
	}
}
