package experiments

import (
	"fmt"

	"defectsim/internal/obs"
)

// PipelineError is the failure of one pipeline stage. It names the stage,
// wraps the underlying cause (which may be context.Canceled or
// context.DeadlineExceeded when the run was cancelled or timed out), and
// carries a snapshot of the run's counters at failure time so callers can
// see how far the pipeline got.
type PipelineError struct {
	// Stage is the pipeline stage that failed — one of StageNames, or
	// "cache" for cache-layer failures.
	Stage string
	// Err is the underlying cause. Panics inside a stage are converted to
	// errors carrying the panic value and stack.
	Err error
	// Progress is the metrics-counter snapshot at failure time (nil when
	// the run was not traced). Counters such as atpg_faults_detected or
	// swsim_vectors_applied record partial progress.
	Progress []obs.CounterSnap
}

func (e *PipelineError) Error() string {
	return fmt.Sprintf("experiments: stage %s: %v", e.Stage, e.Err)
}

func (e *PipelineError) Unwrap() error { return e.Err }

// Degradation records one graceful-degradation event: a stage that could
// not finish its full workload but produced a usable partial result
// instead of failing the run.
type Degradation struct {
	Stage  string // stage name (one of StageNames, or "cache")
	Reason string // human-readable explanation
}

func (d Degradation) String() string {
	return fmt.Sprintf("degraded %s: %s", d.Stage, d.Reason)
}
