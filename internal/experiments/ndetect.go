package experiments

import (
	"context"
	"fmt"
	"strings"

	"defectsim/internal/atpg"
	"defectsim/internal/dlmodel"
	"defectsim/internal/switchsim"
	"defectsim/internal/textplot"
)

// NDetectStudy (ABL-9) sweeps the detection multiplicity n: for each
// n ∈ {1..MaxN} it grows the pipeline's test set into an n-detect set
// (every testable stuck-at fault detected by ≥ n distinct vectors,
// Pomeranz & Reddy), re-scores the realistic fault list at switch level
// under the grown set, and projects the defect level through the paper's
// weighted model (eq. 11). The point of the sweep is the surrogate gap:
// stuck-at coverage T saturates at n = 1, but Θ(n) — and with it DL(n) —
// keeps improving as extra detections excite each fault site under new
// line conditions.
type NDetectStudy struct {
	// Ns lists the swept multiplicities, 1..MaxN.
	Ns []int
	// Vectors[i] is |T(n)| — the n-detect test-set size at n = Ns[i].
	// Monotone non-decreasing by construction: each level grows the
	// previous level's set.
	Vectors []int
	// Added[i] is how many vectors level Ns[i] appended to the previous
	// level (0 at n = 1, the pipeline's own set).
	Added []int
	// FullCoverage[i] is the fraction of testable stuck-at faults that
	// reached n detections under T(n).
	FullCoverage []float64
	// Saturated[i] counts testable faults the generator could not push to
	// n distinct detections.
	Saturated []int
	// Theta[i] is the weighted realistic (switch-level, voltage-test)
	// coverage Θ(n) of T(n) over the pipeline's fault list.
	Theta []float64
	// DL[i] is the projected defect level at Θ(n) (eq. 11 with the
	// pipeline's yield), as a fraction.
	DL []float64
	// Yield is the pipeline yield the DL projection used.
	Yield float64
}

// RunNDetectStudy sweeps n from 1 to maxN on a completed pipeline.
//
// Level 1 is the pipeline's own test set and switch-level campaign —
// no re-simulation. Each later level grows the previous level's set with
// atpg.BuildNDetectTestSet (so |T(n)| is monotone) and re-scores the
// realistic fault list with switchsim.SimulateFaultsTrace, sharing the
// pipeline's good trace for the base-vector prefix; a level that appends
// no vectors reuses the previous level's Θ outright. Θ is voltage-test
// coverage (no IDDQ credit), matching the pipeline's headline Θ and the
// top-up study's accounting.
func RunNDetectStudy(ctx context.Context, p *Pipeline, maxN int) (*NDetectStudy, error) {
	if maxN < 1 {
		return nil, fmt.Errorf("experiments: n-detect study needs maxN >= 1, got %d", maxN)
	}
	tr := p.Config.Obs
	reg := tr.Metrics()
	st := &NDetectStudy{Yield: p.Yield}

	record := func(n, vectors, added, saturated int, fullCov, theta float64) {
		st.Ns = append(st.Ns, n)
		st.Vectors = append(st.Vectors, vectors)
		st.Added = append(st.Added, added)
		st.Saturated = append(st.Saturated, saturated)
		st.FullCoverage = append(st.FullCoverage, fullCov)
		st.Theta = append(st.Theta, theta)
		dl := 0.0
		if p.Yield > 0 && p.Yield < 1 {
			dl = dlmodel.Weighted(p.Yield, theta)
		}
		st.DL = append(st.DL, dl)
	}

	// Level 1: the pipeline already built and scored exactly this set.
	baseVectors := p.Vectors()
	det1 := p.SwitchRes.DetectedBy(len(baseVectors), false)
	record(1, len(p.TestSet.Patterns), 0, 0, p.TestSet.Coverage(true), p.Faults.WeightedCoverage(det1))

	patterns := p.TestSet.Patterns
	theta := st.Theta[0]
	trace, err := p.GoodTrace(ctx)
	if err != nil {
		return nil, err
	}
	for n := 2; n <= maxN; n++ {
		sp := tr.StartSpan(fmt.Sprintf("ndetect-n%d", n))
		s, err := atpg.BuildNDetectTestSet(ctx, p.Netlist, p.StuckAt, patterns, p.TestSet.Untestable,
			n, p.Config.BacktrackLimit, p.Config.Workers, tr)
		if err != nil {
			sp.End()
			return nil, err
		}
		saturated := 0
		for _, sat := range s.Saturated {
			if sat {
				saturated++
			}
		}
		added := len(s.Patterns) - len(patterns)
		patterns = s.Patterns
		if added > 0 {
			// Re-score the realistic faults under the grown set. The shared
			// good trace covers the base-vector prefix; the campaign
			// continues live past its end for the appended vectors.
			vectors := make([]switchsim.Vector, len(patterns))
			copy(vectors, baseVectors[:min(len(baseVectors), len(patterns))])
			for i := len(baseVectors); i < len(patterns); i++ {
				v := make(switchsim.Vector, len(patterns[i]))
				for j, b := range patterns[i] {
					v[j] = switchsim.Val(b)
				}
				vectors[i] = v
			}
			res, err := switchsim.SimulateFaultsTrace(ctx, p.Circuit, p.Faults, vectors,
				p.Config.Workers, switchsim.BridgeG, reg, trace)
			if err != nil {
				sp.End()
				return nil, err
			}
			theta = p.Faults.WeightedCoverage(res.DetectedBy(len(vectors), false))
		}
		record(n, len(patterns), added, saturated, s.Coverage(true), theta)
		sp.End()
	}
	return st, nil
}

// Render prints the sweep as the DL(n) projection table.
func (st *NDetectStudy) Render() string {
	var b strings.Builder
	b.WriteString("ABL-9  n-detection: test-set growth vs realistic coverage and defect level\n")
	tb := textplot.Table{Headers: []string{"n", "|T(n)|", "added", "n-det cov", "Θ(n)", "DL(n) ppm"}}
	for i, n := range st.Ns {
		tb.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", st.Vectors[i]),
			fmt.Sprintf("%d", st.Added[i]),
			fmt.Sprintf("%.4f", st.FullCoverage[i]),
			fmt.Sprintf("%.4f", st.Theta[i]),
			fmt.Sprintf("%.1f", st.DL[i]*1e6),
		)
	}
	b.WriteString(tb.Render())
	fmt.Fprintf(&b, "(Θ and DL are voltage-test projections at yield %.3f; eq. 11 weighted model)\n", st.Yield)
	return b.String()
}
