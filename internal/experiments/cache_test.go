package experiments

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"defectsim/internal/faultinject"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
)

func TestRunCachedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")
	nl := netlist.RippleAdder(3)
	cfg := smallConfig()

	p1, hit, err := RunCached(nl, cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first run cannot hit the cache")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("cache file missing")
	}

	p2, hit, err := RunCached(netlist.RippleAdder(3), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second run must hit the cache")
	}
	// Every derived curve must be identical.
	c1, c2 := p1.ThetaCurve(false), p2.ThetaCurve(false)
	if len(c1) != len(c2) {
		t.Fatal("curve length mismatch")
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("Θ curve differs at %d: %+v vs %+v", i, c1[i], c2[i])
		}
	}
	t1, t2 := p1.TCurve(), p2.TCurve()
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("T curve differs")
		}
	}
	if p1.Yield != p2.Yield {
		t.Fatal("yield differs")
	}
	f1, f2 := Figure5(p1), Figure5(p2)
	if f1.Fitted != f2.Fitted {
		t.Fatalf("fit differs: %+v vs %+v", f1.Fitted, f2.Fitted)
	}
}

// TestRunCachedDegradedNotSaved pins the cache-poisoning guard: a run cut
// short by a stage budget holds partial results and must never be written
// to the result cache — the key excludes execution budgets, so a later
// unconstrained request would hit the partial data and be served it as
// complete. The degraded run is delivered but not persisted; the next
// unconstrained run misses, completes in full, and populates the cache.
func TestRunCachedDegradedNotSaved(t *testing.T) {
	restore := faultinject.Set(faultinject.HookATPGFault, faultinject.Sleep(5*time.Millisecond))
	defer restore()

	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")
	cfg := smallConfig()
	cfg.RandomVectors = 0
	cfg.Obs = obs.New()
	cfg.StageBudgets = map[string]time.Duration{"atpg": 20 * time.Millisecond}

	p, hit, err := RunCached(netlist.C17(), cfg, path)
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not fail: %v", err)
	}
	if hit {
		t.Fatal("first run cannot hit the cache")
	}
	if !p.ResultDegraded() {
		t.Fatalf("run is not result-degraded (degradations: %+v)", p.Degradations)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("degraded run was written to the result cache")
	}
	if got := cfg.Obs.Metrics().Counter("pipeline_cache_save_skipped_degraded").Value(); got != 1 {
		t.Fatalf("pipeline_cache_save_skipped_degraded = %d, want 1", got)
	}
	// Save itself refuses degraded pipelines (defense in depth for any
	// future direct caller).
	if err := p.Save(path); err == nil {
		t.Fatal("Save accepted a result-degraded run")
	}

	// The same result-determining config without budgets: a miss (never a
	// hit on partial data), a complete run, and a populated cache.
	restore()
	cfg2 := smallConfig()
	cfg2.RandomVectors = 0
	cfg2.Obs = obs.New()
	p2, hit, err := RunCached(netlist.C17(), cfg2, path)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("unconstrained run hit a cache that must not have been written")
	}
	if p2.Degraded() {
		t.Fatalf("unconstrained run degraded: %+v", p2.Degradations)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("complete run did not populate the cache")
	}

	// And the populated cache now serves complete, undegraded hits.
	p3, hit, err := RunCached(netlist.C17(), cfg2, path)
	if err != nil || !hit {
		t.Fatalf("complete-run cache must hit (hit=%v err=%v)", hit, err)
	}
	if p3.Degraded() {
		t.Fatalf("cache hit reports degradation: %+v", p3.Degradations)
	}
	if len(p3.TestSet.Patterns) != len(p2.TestSet.Patterns) {
		t.Fatalf("cache hit has %d patterns, fresh complete run had %d",
			len(p3.TestSet.Patterns), len(p2.TestSet.Patterns))
	}
}

func TestRunCachedInvalidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")
	cfg := smallConfig()
	if _, _, err := RunCached(netlist.RippleAdder(3), cfg, path); err != nil {
		t.Fatal(err)
	}
	// Different circuit: miss.
	if _, hit, err := RunCached(netlist.MuxTree(2), cfg, path); err != nil || hit {
		t.Fatalf("different circuit must miss (hit=%v err=%v)", hit, err)
	}
	// Different config: miss.
	cfg2 := cfg
	cfg2.Seed++
	if _, hit, err := RunCached(netlist.MuxTree(2), cfg2, path); err != nil || hit {
		t.Fatal("different config must miss")
	}
	// Corrupt file: miss, then refreshed.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := RunCached(netlist.RippleAdder(3), cfg, path); err != nil || hit {
		t.Fatal("corrupt cache must miss")
	}
	if _, hit, err := RunCached(netlist.RippleAdder(3), cfg, path); err != nil || !hit {
		t.Fatal("refreshed cache must hit")
	}
}
