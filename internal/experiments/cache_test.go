package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"defectsim/internal/netlist"
)

func TestRunCachedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")
	nl := netlist.RippleAdder(3)
	cfg := smallConfig()

	p1, hit, err := RunCached(nl, cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first run cannot hit the cache")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("cache file missing")
	}

	p2, hit, err := RunCached(netlist.RippleAdder(3), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second run must hit the cache")
	}
	// Every derived curve must be identical.
	c1, c2 := p1.ThetaCurve(false), p2.ThetaCurve(false)
	if len(c1) != len(c2) {
		t.Fatal("curve length mismatch")
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("Θ curve differs at %d: %+v vs %+v", i, c1[i], c2[i])
		}
	}
	t1, t2 := p1.TCurve(), p2.TCurve()
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("T curve differs")
		}
	}
	if p1.Yield != p2.Yield {
		t.Fatal("yield differs")
	}
	f1, f2 := Figure5(p1), Figure5(p2)
	if f1.Fitted != f2.Fitted {
		t.Fatalf("fit differs: %+v vs %+v", f1.Fitted, f2.Fitted)
	}
}

func TestRunCachedInvalidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")
	cfg := smallConfig()
	if _, _, err := RunCached(netlist.RippleAdder(3), cfg, path); err != nil {
		t.Fatal(err)
	}
	// Different circuit: miss.
	if _, hit, err := RunCached(netlist.MuxTree(2), cfg, path); err != nil || hit {
		t.Fatalf("different circuit must miss (hit=%v err=%v)", hit, err)
	}
	// Different config: miss.
	cfg2 := cfg
	cfg2.Seed++
	if _, hit, err := RunCached(netlist.MuxTree(2), cfg2, path); err != nil || hit {
		t.Fatal("different config must miss")
	}
	// Corrupt file: miss, then refreshed.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := RunCached(netlist.RippleAdder(3), cfg, path); err != nil || hit {
		t.Fatal("corrupt cache must miss")
	}
	if _, hit, err := RunCached(netlist.RippleAdder(3), cfg, path); err != nil || !hit {
		t.Fatal("refreshed cache must hit")
	}
}
