package experiments

import (
	"context"
	"path/filepath"
	"testing"

	"defectsim/internal/netlist"
	"defectsim/internal/obs"
)

// counterValue pulls a counter out of a run report snapshot (0 if absent).
func counterValue(rep *obs.Report, name string) int64 {
	for _, c := range rep.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestResistiveSweepSharesGoodTrace pins the acceptance criterion: the
// resistive sweep simulates the good machine exactly once per (circuit,
// vectors) pair — the pipeline's own capture — and every conductance point
// counts as a trace hit.
func TestResistiveSweepSharesGoodTrace(t *testing.T) {
	cfg := smallConfig()
	cfg.Obs = obs.New()
	p, err := Run(netlist.RippleAdder(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := cfg.Obs.Metrics()
	if v := reg.Counter("swsim_goodtrace_misses").Value(); v != 1 {
		t.Fatalf("pipeline run captured the good trace %d times, want exactly 1", v)
	}

	gs := []float64{20, 5, 1.5}
	st, err := RunResistiveBridgeStudy(p, gs)
	if err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("swsim_goodtrace_misses").Value(); v != 1 {
		t.Fatalf("sweep re-simulated the good machine: %d captures total, want 1", v)
	}
	if v := reg.Counter("swsim_goodtrace_hits").Value(); v != int64(len(gs)) {
		t.Fatalf("trace hits = %d, want %d (one per conductance)", v, len(gs))
	}

	// Bitwise identity with the pre-cache behaviour: an isolated pipeline
	// (no shared trace, fresh capture) must produce the same study.
	p2, err := Run(netlist.RippleAdder(3), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st2, err := RunResistiveBridgeStudy(p2, gs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gs {
		if st.ThetaVoltage[i] != st2.ThetaVoltage[i] || st.ThetaIDDQ[i] != st2.ThetaIDDQ[i] {
			t.Fatalf("g=%g: traced sweep differs: %v/%v vs %v/%v",
				gs[i], st.ThetaVoltage[i], st.ThetaIDDQ[i], st2.ThetaVoltage[i], st2.ThetaIDDQ[i])
		}
	}
}

// TestCacheRestoresGoodTrace pins the persistence path: a cache-hit
// pipeline restores the good trace from disk (no new capture) together
// with the full switch-level Result record, and downstream studies run on
// trace hits alone.
func TestCacheRestoresGoodTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	nl := netlist.RippleAdder(3)
	cfg := smallConfig()

	p1, hit, err := RunCached(nl, cfg, path)
	if err != nil || hit {
		t.Fatalf("seed run: hit=%v err=%v", hit, err)
	}

	cfg2 := smallConfig()
	cfg2.Obs = obs.New()
	p2, hit, err := RunCached(netlist.RippleAdder(3), cfg2, path)
	if err != nil || !hit {
		t.Fatalf("second run: hit=%v err=%v", hit, err)
	}
	if p2.SwitchRes.VectorsApplied != p1.SwitchRes.VectorsApplied {
		t.Fatalf("VectorsApplied not restored: %d, want %d", p2.SwitchRes.VectorsApplied, p1.SwitchRes.VectorsApplied)
	}
	if len(p2.SwitchRes.Undecided) != len(p1.SwitchRes.Undecided) {
		t.Fatal("Undecided flags not restored")
	}

	reg := cfg2.Obs.Metrics()
	if v := reg.Counter("swsim_goodtrace_misses").Value(); v != 0 {
		t.Fatalf("cache hit still captured the good trace %d times", v)
	}
	tr, err := p2.GoodTrace(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Complete() || tr.Applied() != len(p2.Vectors()) {
		t.Fatalf("restored trace incomplete: %d/%d vectors", tr.Applied(), len(p2.Vectors()))
	}
	if v := reg.Counter("swsim_goodtrace_misses").Value(); v != 0 {
		t.Fatal("GoodTrace recaptured despite the restored cache trace")
	}

	gs := []float64{20, 1.5}
	st2, err := RunResistiveBridgeStudy(p2, gs)
	if err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("swsim_goodtrace_hits").Value(); v != int64(len(gs)) {
		t.Fatalf("trace hits = %d, want %d", v, len(gs))
	}
	st1, err := RunResistiveBridgeStudy(p1, gs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gs {
		if st1.ThetaVoltage[i] != st2.ThetaVoltage[i] || st1.ThetaIDDQ[i] != st2.ThetaIDDQ[i] {
			t.Fatalf("g=%g: cache-restored sweep differs from fresh sweep", gs[i])
		}
	}
}

// TestRunReportSurfacesTraceReuse pins the observability contract: the
// machine-readable run report of a pipeline + sweep session carries the
// swsim_goodtrace_{hits,misses} counters and the bytes gauge.
func TestRunReportSurfacesTraceReuse(t *testing.T) {
	cfg := smallConfig()
	cfg.Obs = obs.New()
	p, err := Run(netlist.RippleAdder(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunResistiveBridgeStudy(p, []float64{20}); err != nil {
		t.Fatal(err)
	}
	rep := cfg.Obs.Report(p.Netlist.Name)
	if counterValue(rep, "swsim_goodtrace_misses") != 1 || counterValue(rep, "swsim_goodtrace_hits") != 1 {
		t.Fatalf("run report misses trace-reuse counters: %+v", rep.Counters)
	}
	found := false
	for _, g := range rep.Gauges {
		if g.Name == "swsim_goodtrace_bytes" && g.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("run report misses the swsim_goodtrace_bytes gauge: %+v", rep.Gauges)
	}
}

// TestTopUpAndDiagnosisUseSharedTrace guards the remaining consumers: the
// top-up re-score and the diagnosis replay must not trigger extra good
// trace captures on a pipeline that already holds one.
func TestTopUpAndDiagnosisUseSharedTrace(t *testing.T) {
	cfg := smallConfig()
	cfg.Obs = obs.New()
	p, err := Run(netlist.RippleAdder(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBridgeTopUp(p, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := RunDiagnosisStudy(p, 16, 5); err != nil {
		t.Fatal(err)
	}
	reg := cfg.Obs.Metrics()
	if v := reg.Counter("swsim_goodtrace_misses").Value(); v != 1 {
		t.Fatalf("top-up/diagnosis re-captured the good trace: %d misses, want 1", v)
	}
}
