package experiments

import (
	"context"
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/netlist"
	"defectsim/internal/switchsim"
)

// exhaustiveSweep is the pre-dropping reference: every bridge fault
// re-simulated at every conductance point, no verdict carrying.
func exhaustiveSweep(t *testing.T, p *Pipeline, gs []float64) ([]float64, []float64) {
	t.Helper()
	bridges := &fault.List{}
	for _, f := range p.Faults.Faults {
		if f.Kind == fault.KindBridge {
			bridges.Faults = append(bridges.Faults, f)
		}
	}
	vectors := p.Vectors()
	trace, err := p.GoodTrace(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	voltage := make([]float64, len(gs))
	iddq := make([]float64, len(gs))
	for i, g := range gs {
		res, err := switchsim.SimulateFaultsTrace(context.Background(), p.Circuit, bridges, vectors,
			1, g, nil, trace)
		if err != nil {
			t.Fatal(err)
		}
		k := len(vectors)
		voltage[i] = bridges.WeightedCoverage(res.DetectedBy(k, false))
		iddq[i] = bridges.WeightedCoverage(res.DetectedBy(k, true))
	}
	return voltage, iddq
}

// TestResistiveSweepDroppingMatchesExhaustive pins the detected-fault-
// dropping sweep semantics: carrying "undetected" verdicts from stronger
// to weaker conductances (and computing the IDDQ screen once) must yield
// exactly the coverages an exhaustive per-point re-simulation yields —
// the empirical check of the monotone-detectability premise the dropping
// optimization rests on.
func TestResistiveSweepDroppingMatchesExhaustive(t *testing.T) {
	for _, nl := range []*netlist.Netlist{netlist.C17(), netlist.RippleAdder(4)} {
		p, err := Run(nl, smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		// Default grid plus extra points straddling the device drive
		// strengths (6–8), where strength fights flip outcome.
		gs := []float64{switchsim.BridgeG, 40, 20, 9, 6.5, 5, 3, 1.5, 0.3}
		st, err := RunResistiveBridgeStudy(p, gs)
		if err != nil {
			t.Fatal(err)
		}
		wantV, wantI := exhaustiveSweep(t, p, gs)
		for i := range gs {
			if st.ThetaVoltage[i] != wantV[i] {
				t.Errorf("%s g=%g: ThetaVoltage %.6f, exhaustive %.6f",
					nl.Name, gs[i], st.ThetaVoltage[i], wantV[i])
			}
			if st.ThetaIDDQ[i] != wantI[i] {
				t.Errorf("%s g=%g: ThetaIDDQ %.6f, exhaustive %.6f",
					nl.Name, gs[i], st.ThetaIDDQ[i], wantI[i])
			}
		}
		// The whole point: weaker points must simulate strictly fewer
		// faults than the full list once detectability starts collapsing.
		if st.Simulated[len(gs)-1] >= st.Simulated[0] {
			t.Errorf("%s: weakest point simulated %d faults, strongest %d — dropping had no effect",
				nl.Name, st.Simulated[len(gs)-1], st.Simulated[0])
		}
	}
}

// TestResistiveSweepUnsortedGs pins order independence of the reported
// arrays: results are keyed to the caller's gs order even though the
// carry-forward pass processes conductances strongest-first.
func TestResistiveSweepUnsortedGs(t *testing.T) {
	p, err := Run(netlist.C17(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sorted := []float64{20, 5, 1.5}
	shuffled := []float64{5, 1.5, 20}
	a, err := RunResistiveBridgeStudy(p, sorted)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunResistiveBridgeStudy(p, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	find := func(st *ResistiveBridgeStudy, g float64) (float64, float64) {
		for i := range st.Gs {
			if st.Gs[i] == g {
				return st.ThetaVoltage[i], st.ThetaIDDQ[i]
			}
		}
		t.Fatalf("g=%g missing", g)
		return 0, 0
	}
	for _, g := range sorted {
		av, ai := find(a, g)
		bv, bi := find(b, g)
		if av != bv || ai != bi {
			t.Fatalf("g=%g: sorted run %.6f/%.6f, shuffled run %.6f/%.6f", g, av, ai, bv, bi)
		}
	}
}
