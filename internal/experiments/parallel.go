package experiments

// Bounded experiment-level parallelism: the pipeline stages are already
// fault-parallel inside gatesim/switchsim; this file adds the layer above
// — running *independent* experiments (figures, sweeps, Monte Carlo
// campaigns, whole suite circuits) concurrently on a bounded worker pool
// while keeping outputs in deterministic presentation order. Everything
// here runs under the same context/budget/degradation machinery as the
// serial drivers: workers claim items in order, cancellation stops new
// items promptly, and the lowest-index failure wins.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"defectsim/internal/par"
)

// forEach runs fn(i) for every i in [0, n) on a worker pool of the
// normalized size (workers <= 0 selects runtime.NumCPU(), never more
// goroutines than items). Items are claimed in index order. Once an item
// fails or the context ends, no further items start (in-flight ones
// finish); the recorded failure with the lowest index is returned, so a
// concurrent run fails on the same item a serial run would reach first.
func forEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	w := par.WorkersFor(workers, n)
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Study is one independent post-pipeline experiment: a label and a run
// function producing the rendered artifact. Studies read the shared
// Pipeline without mutating it, so any set of them can run concurrently.
type Study struct {
	Name string
	Run  func(ctx context.Context, p *Pipeline) (string, error)
}

// StandardStudies returns the independent figure/table/validation studies
// that share one pipeline run — the body of `dlproj all` — in
// presentation order. Seeded campaigns (lot, inject) draw their seed from
// the pipeline's config, so the suite is reproducible as a unit.
func StandardStudies() []Study {
	pure := func(render func(p *Pipeline) string) func(context.Context, *Pipeline) (string, error) {
		return func(_ context.Context, p *Pipeline) (string, error) { return render(p), nil }
	}
	return []Study{
		{"fig3", pure(func(p *Pipeline) string { return Figure3(p).Render() })},
		{"fig4", pure(func(p *Pipeline) string { return Figure4(p).Render() })},
		{"fig5", pure(func(p *Pipeline) string { return Figure5(p).Render() })},
		{"fig6", pure(func(p *Pipeline) string { return Figure6(p).Render() })},
		{"agrawal", pure(func(p *Pipeline) string { return RunAgrawalComparison(p).Render() })},
		{"iddq", pure(func(p *Pipeline) string { return RunIDDQAblation(p).Render() })},
		{"delay", func(_ context.Context, p *Pipeline) (string, error) {
			a, err := RunDelayAblation(p)
			if err != nil {
				return "", err
			}
			return a.Render(), nil
		}},
		{"resist", func(_ context.Context, p *Pipeline) (string, error) {
			st, err := RunResistiveBridgeStudy(p, nil)
			if err != nil {
				return "", err
			}
			return st.Render(), nil
		}},
		{"lot", pure(func(p *Pipeline) string {
			return RunLotValidation(p, 200000, p.Config.Seed).Render()
		})},
		{"inject", pure(func(p *Pipeline) string {
			return RunInjectionValidation(p, 50000, p.Config.Seed).Render()
		})},
		{"diag", func(_ context.Context, p *Pipeline) (string, error) {
			st, err := RunDiagnosisStudy(p, 200, 5)
			if err != nil {
				return "", err
			}
			return st.Render(), nil
		}},
		{"kinds", pure(FaultKindBreakdown)},
	}
}

// RunStudies executes the studies on a bounded worker pool (workers <= 0
// selects runtime.NumCPU()) and returns the rendered artifacts in input
// order — the paper's evaluation as a concurrent experiment suite. The
// netlist's lazily built driver index is primed up front so the shared
// read-only Pipeline stays race-free across workers.
func RunStudies(ctx context.Context, p *Pipeline, studies []Study, workers int) ([]string, error) {
	if p.Netlist != nil && p.Netlist.NumNets() > 0 {
		p.Netlist.Driver(0)
	}
	out := make([]string, len(studies))
	err := forEach(ctx, workers, len(studies), func(i int) error {
		s, err := studies[i].Run(ctx, p)
		if err != nil {
			return fmt.Errorf("study %s: %w", studies[i].Name, err)
		}
		out[i] = s
		return nil
	})
	return out, err
}
