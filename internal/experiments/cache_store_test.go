package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"defectsim/internal/faultinject"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
	"defectsim/internal/store"
)

// TestSaveEnvelopeIsStoreCompatible pins the wire contract between the
// experiments cache envelope and the store layer's independent mirror:
// every byte stream Save/EncodeCache produces must pass
// store.VerifyEnvelope, or remote peers would reject locally-valid
// results.
func TestSaveEnvelopeIsStoreCompatible(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	p, _, err := RunCached(netlist.C17(), smallConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.EncodeCache()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.VerifyEnvelope(data); err != nil {
		t.Fatalf("EncodeCache output fails store.VerifyEnvelope: %v", err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.VerifyEnvelope(onDisk); err != nil {
		t.Fatalf("Save output fails store.VerifyEnvelope: %v", err)
	}
}

// TestSaveCrashBeforeRenameKeepsOldCache is the fsync-ordering
// regression test for the durable atomic write: the cache.write hook
// fires after the temp file is written and synced but before the rename
// commits, so an injected crash there must leave the destination on its
// previous (complete, valid) content with the temp file already holding
// the full new bytes.
func TestSaveCrashBeforeRenameKeepsOldCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	cfg := smallConfig()
	p, _, err := RunCached(netlist.C17(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("crash before rename")
	var tmpAtHook []byte
	restore := faultinject.Set(faultinject.HookCacheWrite, func(ctx context.Context) error {
		tmpAtHook, _ = os.ReadFile(faultinject.TargetFrom(ctx))
		return boom
	})
	defer restore()
	if err := p.Save(path); !errors.Is(err, boom) {
		t.Fatalf("Save = %v, want the injected crash", err)
	}
	if got, _ := os.ReadFile(path); string(got) != string(before) {
		t.Fatal("aborted Save changed the destination file")
	}
	// The sync-before-rename ordering: at hook time the temp file already
	// held the complete envelope (it verifies end to end).
	if err := store.VerifyEnvelope(tmpAtHook); err != nil {
		t.Fatalf("temp file at crash point is not a complete envelope: %v", err)
	}
}

// TestRunCachedTruncatedMidEnvelope pins the corrupt-fallback path for
// the realistic failure: a cache file cut short mid-envelope (torn disk,
// partial copy). The truncated file must read as corrupt — never as a
// hit, never as an error — and the fresh run must rewrite it.
func TestRunCachedTruncatedMidEnvelope(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	cfg := smallConfig()
	nl := netlist.C17()
	if _, _, err := RunCached(nl, cfg, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate inside the payload: still ASCII JSON prefix, no longer a
	// parseable envelope.
	if err := os.WriteFile(path, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Obs = obs.New()
	p, hit, err := RunCachedCtx(context.Background(), nl, cfg, path)
	if err != nil {
		t.Fatalf("truncated cache must fall back, not fail: %v", err)
	}
	if hit {
		t.Fatal("truncated cache served a hit")
	}
	if got := cfg.Obs.Metrics().Counter("pipeline_cache_corrupt").Value(); got != 1 {
		t.Fatalf("pipeline_cache_corrupt = %d, want 1", got)
	}
	found := false
	for _, d := range p.Degradations {
		if d.Stage == "cache" {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupt fallback not recorded as a cache degradation: %+v", p.Degradations)
	}
	// The fresh run refreshed the file: next call hits a valid envelope.
	if refreshed, err := os.ReadFile(path); err != nil || store.VerifyEnvelope(refreshed) != nil {
		t.Fatalf("fresh run did not rewrite a valid cache file (err=%v)", err)
	}
	cfg2 := smallConfig()
	if _, hit, err := RunCached(nl, cfg2, path); err != nil || !hit {
		t.Fatalf("refreshed cache must hit (hit=%v err=%v)", hit, err)
	}
}

// TestRunStoredRoundTrip exercises the store-backed engine against the
// FS backend: miss → run → persisted under the circuit's CacheKey; a
// second call is a hit with identical simulation results.
func TestRunStoredRoundTrip(t *testing.T) {
	fs, err := store.NewFS(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	nl := netlist.C17()
	ctx := context.Background()

	p1, hit, err := RunStoredCtx(ctx, nl, cfg, fs)
	if err != nil || hit {
		t.Fatalf("first RunStoredCtx: hit=%v err=%v", hit, err)
	}
	key := CacheKey(nl.Name, cfg)
	if ok, _ := fs.Stat(ctx, key); !ok {
		t.Fatal("run not persisted under its cache key")
	}
	p2, hit, err := RunStoredCtx(ctx, netlist.C17(), cfg, fs)
	if err != nil || !hit {
		t.Fatalf("second RunStoredCtx: hit=%v err=%v", hit, err)
	}
	if len(p1.TestSet.Patterns) != len(p2.TestSet.Patterns) || p1.Yield != p2.Yield {
		t.Fatal("stored hit differs from the original run")
	}

	// The persisted envelope round-trips through the forward-path decoder.
	data, err := fs.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := DecodeCached(ctx, netlist.C17(), cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(p3.TestSet.Patterns) != len(p1.TestSet.Patterns) {
		t.Fatal("DecodeCached differs from the original run")
	}
	// And the decoder refuses bytes for a different config.
	other := cfg
	other.Seed++
	if _, err := DecodeCached(ctx, netlist.C17(), other, data); err == nil {
		t.Fatal("DecodeCached accepted an envelope for a different config")
	}
}

// TestRunStoredDegradedNotPersisted extends the cache-poisoning guard to
// store backends: a budget-degraded run is returned but never written.
func TestRunStoredDegradedNotPersisted(t *testing.T) {
	restore := faultinject.Set(faultinject.HookATPGFault, faultinject.Sleep(5*time.Millisecond))
	defer restore()
	fs, err := store.NewFS(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.RandomVectors = 0
	cfg.Obs = obs.New()
	cfg.StageBudgets = map[string]time.Duration{"atpg": 20 * time.Millisecond}
	ctx := context.Background()

	p, hit, err := RunStoredCtx(ctx, netlist.C17(), cfg, fs)
	if err != nil || hit {
		t.Fatalf("degraded RunStoredCtx: hit=%v err=%v", hit, err)
	}
	if !p.ResultDegraded() {
		t.Fatalf("run is not result-degraded: %+v", p.Degradations)
	}
	if ok, _ := fs.Stat(ctx, CacheKey("c17", cfg)); ok {
		t.Fatal("degraded run was persisted to the store")
	}
	if got := cfg.Obs.Metrics().Counter("pipeline_cache_save_skipped_degraded").Value(); got != 1 {
		t.Fatalf("pipeline_cache_save_skipped_degraded = %d, want 1", got)
	}
}
