package experiments

import (
	"fmt"
	"math"
	"sort"

	"defectsim/internal/atpg"
	"defectsim/internal/netlist"
)

// TestPointStudy (DFT-1) inserts observation points at the circuit's
// hardest-to-observe nets (by SCOAP) and reruns the whole pipeline on the
// instrumented design: observation points shorten the test set, raise the
// realistic coverage ceiling and cut the residual defect level — the
// design-for-test lever on Θmax, complementary to better detection
// techniques.
type TestPointStudy struct {
	Points       int
	BaseVectors  int
	DftVectors   int
	BaseTheta    float64
	DftTheta     float64
	BaseResidual float64
	DftResidual  float64
}

// AddObservationPoints returns a copy of nl with the n hardest-to-observe
// internal nets (largest SCOAP CO, excluding existing POs) promoted to
// observable outputs.
func AddObservationPoints(nl *netlist.Netlist, n int) (*netlist.Netlist, error) {
	ts, err := atpg.ComputeTestability(nl)
	if err != nil {
		return nil, err
	}
	isPO := map[int]bool{}
	for _, po := range nl.POs {
		isPO[po] = true
	}
	type sc struct{ net, co int }
	var cands []sc
	for net := 0; net < nl.NumNets(); net++ {
		if !isPO[net] {
			cands = append(cands, sc{net, ts.CO[net]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].co != cands[b].co {
			return cands[a].co > cands[b].co
		}
		return cands[a].net < cands[b].net
	})
	// Rebuild a copy (cheap deep copy through bench round-trip semantics:
	// direct structural copy here).
	cp := netlist.New(nl.Name + "-dft")
	cp.NetNames = append([]string(nil), nl.NetNames...)
	for _, g := range nl.Gates {
		cp.Gates = append(cp.Gates, netlist.Gate{
			Type: g.Type, Inputs: append([]int(nil), g.Inputs...), Out: g.Out,
		})
	}
	cp.PIs = append([]int(nil), nl.PIs...)
	cp.POs = append([]int(nil), nl.POs...)
	for i := 0; i < n && i < len(cands); i++ {
		cp.MarkPO(cands[i].net)
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}

// RunTestPointStudy compares the pipeline against a rerun on the same
// circuit with n observation points inserted.
func RunTestPointStudy(p *Pipeline, n int) (*TestPointStudy, error) {
	st := &TestPointStudy{
		Points:      n,
		BaseVectors: len(p.TestSet.Patterns),
		BaseTheta:   p.ThetaCurve(false).Final(),
	}
	st.BaseResidual = residual(p.Yield, st.BaseTheta)

	dftNl, err := AddObservationPoints(p.Netlist, n)
	if err != nil {
		return nil, err
	}
	dft, err := Run(dftNl, p.Config)
	if err != nil {
		return nil, err
	}
	st.DftVectors = len(dft.TestSet.Patterns)
	st.DftTheta = dft.ThetaCurve(false).Final()
	st.DftResidual = residual(dft.Yield, st.DftTheta)
	return st, nil
}

func residual(y, theta float64) float64 {
	if theta >= 1 {
		return 0
	}
	return 1 - math.Pow(y, 1-theta)
}

// Render prints the study.
func (st *TestPointStudy) Render() string {
	return fmt.Sprintf(
		"DFT-1  Observation points at the %d hardest-to-observe nets\n"+
			"  test set   : %d → %d vectors\n"+
			"  Θ ceiling  : %.4f → %.4f\n"+
			"  residual DL: %.0f ppm → %.0f ppm\n",
		st.Points, st.BaseVectors, st.DftVectors,
		st.BaseTheta, st.DftTheta, 1e6*st.BaseResidual, 1e6*st.DftResidual)
}
