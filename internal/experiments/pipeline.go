// Package experiments reproduces the paper's evaluation: it wires the full
// pipeline (standard-cell layout → inductive fault extraction → gate- and
// switch-level fault simulation → defect-level models) and provides one
// driver per figure/example, each returning its data along with an ASCII
// rendering. See DESIGN.md for the per-experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
//
// # Hardened execution
//
// RunCtx is the hardened entry point: the context cancels the run between
// and inside stages (the ATPG, gate-sim and switch-sim hot loops poll it),
// Config.Deadline bounds the whole run, and Config.StageBudgets bounds
// individual stages. A stage that exhausts its own budget degrades
// gracefully where a partial result is usable (ATPG keeps the partial test
// set with the remaining faults aborted; switch-sim keeps the vectors
// applied so far with undetected-but-unfinished faults marked undecided)
// and the event is recorded in Pipeline.Degradations and the run report.
// Cancellation, global deadline expiry and stage panics instead fail the
// run with a *PipelineError naming the stage and wrapping the cause.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"defectsim/internal/atpg"
	"defectsim/internal/coverage"
	"defectsim/internal/defect"
	"defectsim/internal/extract"
	"defectsim/internal/fault"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
	"defectsim/internal/switchsim"
	"defectsim/internal/transistor"
)

// StageNames lists the pipeline stages in execution order — the valid
// keys of Config.StageBudgets and the stage labels of spans, PipelineError
// and Degradation records.
var StageNames = []string{
	"layout", "lvs", "extract", "scale-weights", "transistor-map",
	"stuckat-collapse", "atpg", "switch-sim", "curves",
}

// Config parameterizes a pipeline run.
type Config struct {
	// Seed drives benchmark generation and the random vector prefix.
	Seed int64
	// TargetYield rescales the extracted fault weights (paper: 0.75).
	// Zero disables scaling.
	TargetYield float64
	// RandomVectors is the length of the random prefix before deterministic
	// top-up (paper: enough for >80% stuck-at coverage).
	RandomVectors int
	// BacktrackLimit bounds the deterministic generator per fault.
	BacktrackLimit int
	// Stats is the spot-defect characterization (default defect.Typical()).
	Stats defect.Statistics
	// Obs, when non-nil, receives a span per pipeline stage and the
	// subsystem metrics; the resulting run report lands in
	// Pipeline.Report. The default nil tracer costs nothing.
	Obs *obs.Tracer
	// Deadline, when positive, bounds the whole run's wall time. Expiry
	// fails the run with a *PipelineError wrapping
	// context.DeadlineExceeded.
	Deadline time.Duration
	// StageBudgets, keyed by StageNames entries, bound individual stages.
	// Exhausting a stage budget degrades the run where a partial result is
	// usable (atpg, switch-sim) and fails it otherwise.
	StageBudgets map[string]time.Duration
	// Workers bounds the worker pools of the run: the fault-parallel
	// gate- and switch-level simulators inside the pipeline stages, and
	// the concurrent experiment drivers built on top (RunSuiteCtx,
	// RunStudies). Zero selects runtime.NumCPU() (the shared internal/par
	// policy); negative counts are rejected by Validate. Simulation
	// results are bitwise identical for every worker count.
	Workers int
}

// DefaultConfig returns the configuration of the paper's c432 experiment.
func DefaultConfig() Config {
	return Config{
		Seed:           1994,
		TargetYield:    0.75,
		RandomVectors:  64,
		BacktrackLimit: 2000,
		Stats:          defect.Typical(),
	}
}

// Validate rejects configurations that cannot run: negative vector or
// backtrack counts, a target yield outside (0, 1] (zero is allowed and
// disables scaling), uninitialized defect statistics, negative budgets and
// budgets for stages that do not exist.
func (c *Config) Validate() error {
	if c.RandomVectors < 0 {
		return fmt.Errorf("experiments: config: RandomVectors is %d, must be >= 0", c.RandomVectors)
	}
	if c.BacktrackLimit < 0 {
		return fmt.Errorf("experiments: config: BacktrackLimit is %d, must be >= 0", c.BacktrackLimit)
	}
	if c.TargetYield < 0 || c.TargetYield > 1 {
		return fmt.Errorf("experiments: config: TargetYield is %g, must be in (0, 1] (or 0 to disable scaling)", c.TargetYield)
	}
	if c.Stats.MaxSize <= 0 {
		return fmt.Errorf("experiments: config: Stats.MaxSize is %d; Stats looks uninitialized, use defect.Typical()", c.Stats.MaxSize)
	}
	for _, cl := range c.Stats.Classes {
		if cl.Density < 0 {
			return fmt.Errorf("experiments: config: defect class %v has negative density %g", cl.Type, cl.Density)
		}
	}
	if c.Deadline < 0 {
		return fmt.Errorf("experiments: config: Deadline is %v, must be >= 0", c.Deadline)
	}
	if c.Workers < 0 {
		return fmt.Errorf("experiments: config: Workers is %d, must be >= 0 (0 selects NumCPU)", c.Workers)
	}
	for name, b := range c.StageBudgets {
		if b <= 0 {
			return fmt.Errorf("experiments: config: stage budget for %q is %v, must be > 0", name, b)
		}
		known := false
		for _, s := range StageNames {
			if s == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("experiments: config: stage budget for unknown stage %q (stages: %s)", name, strings.Join(StageNames, ", "))
		}
	}
	return nil
}

// Pipeline is a fully simulated design: every artifact the figures need.
type Pipeline struct {
	Config  Config
	Netlist *netlist.Netlist
	Layout  *layout.Layout
	Circuit *transistor.Circuit

	// Realistic faults with weights scaled to the target yield.
	Faults *fault.List
	Yield  float64

	// Stuck-at side: collapsed universe, test set (random + deterministic),
	// detection data.
	StuckAt []fault.StuckAt
	TestSet *atpg.TestSet

	// Switch-level side: realistic-fault detection data under the same
	// vectors.
	SwitchRes *switchsim.Result

	// Ks is the log-spaced vector-count grid shared by all curves.
	Ks []int

	// Degradations lists the graceful-degradation events of the run: stage
	// budgets that expired with a usable partial result, switch-sim
	// settle failures, cache-corruption fallbacks. Empty on a clean run.
	Degradations []Degradation

	// Report is the observability run report (stage tree + metrics
	// snapshot); nil unless Config.Obs was set.
	Report *obs.Report

	// traceMu guards the lazily shared artifacts below. The switch-sim
	// stage seeds them as a byproduct of the main campaign; downstream
	// studies (resistive sweep, top-up, diagnosis) and the result cache
	// read them through Vectors and GoodTrace.
	traceMu   sync.Mutex
	vectors   []switchsim.Vector
	goodTrace *switchsim.GoodTrace
}

// Vectors returns the pipeline test set converted to switch-level vectors,
// memoized: every downstream study shares one slice (read-only by
// convention) instead of re-converting the patterns.
func (p *Pipeline) Vectors() []switchsim.Vector {
	p.traceMu.Lock()
	defer p.traceMu.Unlock()
	return p.vectorsLocked()
}

func (p *Pipeline) vectorsLocked() []switchsim.Vector {
	if p.vectors == nil {
		p.vectors = make([]switchsim.Vector, len(p.TestSet.Patterns))
		for i, pat := range p.TestSet.Patterns {
			v := make(switchsim.Vector, len(pat))
			for j, b := range pat {
				v[j] = switchsim.Val(b)
			}
			p.vectors[i] = v
		}
	}
	return p.vectors
}

// GoodTrace returns the fault-free machine's trace over Vectors(), shared
// read-only by every switch-level campaign on this pipeline. The switch-sim
// stage records it as a byproduct of the main campaign (and the result
// cache restores it), so this normally costs nothing; a pipeline that
// skipped both (e.g. hand-built in tests) captures it here once, lazily.
// Counted by the swsim_goodtrace_{hits,misses} metrics.
func (p *Pipeline) GoodTrace(ctx context.Context) (*switchsim.GoodTrace, error) {
	p.traceMu.Lock()
	defer p.traceMu.Unlock()
	if p.goodTrace == nil {
		tr, err := switchsim.CaptureGoodTraceCtx(ctx, p.Circuit, p.vectorsLocked(), p.Config.Obs.Metrics())
		if err != nil {
			return nil, err
		}
		p.goodTrace = tr
	}
	return p.goodTrace, nil
}

// setGoodTrace stores a captured trace for sharing if it is reusable.
func (p *Pipeline) setGoodTrace(tr *switchsim.GoodTrace) {
	if !tr.Complete() {
		return
	}
	p.traceMu.Lock()
	defer p.traceMu.Unlock()
	p.goodTrace = tr
}

// Degraded reports whether the run hit any graceful-degradation path.
// Degraded results are usable but cover less than the full workload.
func (p *Pipeline) Degraded() bool { return len(p.Degradations) > 0 }

// ResultDegraded reports whether the simulation results themselves are
// partial — a stage budget or deadline cut a stage short (fewer ATPG
// patterns, undecided faults). Degradations on the "cache" stage are
// bookkeeping (fallback from a corrupt file, a failed cache write): the
// run behind them is complete, so they do not count here. Only
// result-complete runs may be persisted to the result cache.
func (p *Pipeline) ResultDegraded() bool {
	for _, d := range p.Degradations {
		if d.Stage != "cache" {
			return true
		}
	}
	return false
}

// runner executes pipeline stages under the hardening policy: one span
// per stage, per-stage budget contexts, and panic isolation.
type runner struct {
	ctx context.Context // run context (global deadline applied)
	cfg Config
	tr  *obs.Tracer
	reg *obs.Registry
	p   *Pipeline
	// stageSec is the pipeline_stage_seconds{stage} histogram, resolved
	// once per run; stage() observes every stage's wall time into it.
	stageSec *obs.HistogramVec
}

// StageSecondsBuckets are the pipeline_stage_seconds bucket bounds:
// 1ms … ~4.4min in powers of 4, wide enough for both the unit-test
// circuits and a full hard-benchmark run.
var StageSecondsBuckets = obs.ExpBuckets(0.001, 4, 10)

// stage runs fn under the stage's span and budget context and converts
// failures — errors and panics alike — into a *PipelineError naming the
// stage. fn decides itself whether a budget expiry degrades (return nil
// after recording the partial result) or fails (return the error).
func (r *runner) stage(name string, fn func(ctx context.Context) error) (err error) {
	ctx := r.ctx
	if b, ok := r.cfg.StageBudgets[name]; ok && b > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b)
		defer cancel()
	}
	start := time.Now()
	defer func() {
		r.stageSec.With(name).Observe(time.Since(start).Seconds())
	}()
	sp := r.tr.StartSpan(name)
	defer sp.End()
	defer func() {
		if rec := recover(); rec != nil {
			err = &PipelineError{
				Stage:    name,
				Err:      fmt.Errorf("panic: %v\n%s", rec, debug.Stack()),
				Progress: r.reg.CounterSnapshot(),
			}
		}
	}()
	if err := fn(ctx); err != nil {
		return &PipelineError{Stage: name, Err: err, Progress: r.reg.CounterSnapshot()}
	}
	return nil
}

// budgetExhausted reports whether err is a stage-budget expiry rather
// than run-level cancellation: the stage context hit its deadline while
// the run context is still live.
func (r *runner) budgetExhausted(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) && r.ctx.Err() == nil
}

// degrade records one graceful-degradation event on the pipeline and as a
// metric counter.
func (r *runner) degrade(stage, reason string) {
	r.p.Degradations = append(r.p.Degradations, Degradation{Stage: stage, Reason: reason})
	r.reg.Counter("pipeline_degraded_" + strings.ReplaceAll(stage, "-", "_")).Inc()
}

// Run executes the full pipeline for nl. With cfg.Obs set, every stage is
// wrapped in a span (wall clock + allocation delta), the subsystems record
// their metrics, and the combined run report lands in Pipeline.Report.
// Run is RunCtx without cancellation.
func Run(nl *netlist.Netlist, cfg Config) (*Pipeline, error) {
	return RunCtx(context.Background(), nl, cfg)
}

// RunCtx is Run under a context: cancelling ctx stops the run promptly
// (the simulation hot loops poll it) with a *PipelineError naming the
// interrupted stage and wrapping ctx's error. cfg.Deadline bounds the
// whole run; cfg.StageBudgets bound single stages, degrading gracefully
// where the stage's partial result is usable. See the package comment for
// the full hardening policy.
func RunCtx(ctx context.Context, nl *netlist.Netlist, cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	p := &Pipeline{Config: cfg, Netlist: nl}
	tr := cfg.Obs
	reg := tr.Metrics()
	r := &runner{
		ctx: ctx, cfg: cfg, tr: tr, reg: reg, p: p,
		stageSec: reg.HistogramVec("pipeline_stage_seconds", StageSecondsBuckets, "stage"),
	}
	run := tr.StartSpan("pipeline")
	defer func() {
		run.End()
		if tr != nil {
			p.Report = tr.Report(nl.Name)
			for _, d := range p.Degradations {
				p.Report.Events = append(p.Report.Events, d.String())
			}
		}
	}()

	if err := r.stage("layout", func(ctx context.Context) error {
		var err error
		p.Layout, err = layout.BuildCtx(ctx, nl, nil)
		return err
	}); err != nil {
		return nil, err
	}

	if err := r.stage("lvs", func(ctx context.Context) error {
		return extract.VerifyLVS(p.Layout)
	}); err != nil {
		return nil, err
	}

	if err := r.stage("extract", func(ctx context.Context) error {
		var err error
		p.Faults, err = extract.FaultsCtx(ctx, p.Layout, cfg.Stats, reg)
		if err != nil {
			return err
		}
		if len(p.Faults.Faults) == 0 {
			return fmt.Errorf("no faults extracted from %s", nl.Name)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := r.stage("scale-weights", func(ctx context.Context) error {
		if cfg.TargetYield > 0 {
			p.Faults.ScaleToYield(cfg.TargetYield)
		}
		p.Yield = p.Faults.Yield()
		reg.Gauge("pipeline_yield").Set(p.Yield)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := r.stage("transistor-map", func(ctx context.Context) error {
		p.Circuit = transistor.FromLayout(p.Layout)
		return p.Circuit.Validate()
	}); err != nil {
		return nil, err
	}

	if err := r.stage("stuckat-collapse", func(ctx context.Context) error {
		p.StuckAt = fault.StuckAtUniverse(nl)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := r.stage("atpg", func(ctx context.Context) error {
		ts, err := atpg.BuildTestSetWorkersCtx(ctx, nl, p.StuckAt, cfg.RandomVectors, uint64(cfg.Seed), cfg.BacktrackLimit, cfg.Workers, tr)
		p.TestSet = ts
		if err != nil && ts != nil && r.budgetExhausted(err) {
			det, unt, ab := ts.Counts()
			r.degrade("atpg", fmt.Sprintf(
				"stage budget exhausted: partial test set with %d vectors (%d detected, %d untestable, %d aborted faults)",
				len(ts.Patterns), det, unt, ab))
			return nil
		}
		return err
	}); err != nil {
		return nil, err
	}

	if err := r.stage("switch-sim", func(ctx context.Context) error {
		vectors := p.Vectors()
		// Capture mode: the good-machine trajectory this campaign steps
		// through anyway is recorded and shared (via Pipeline.GoodTrace)
		// with every downstream campaign on the same circuit and vectors.
		res, trace, err := switchsim.SimulateFaultsCapture(ctx, p.Circuit, p.Faults, vectors, cfg.Workers, switchsim.BridgeG, reg)
		p.SwitchRes = res
		p.setGoodTrace(trace)
		if err != nil && res != nil && r.budgetExhausted(err) {
			r.degrade("switch-sim", fmt.Sprintf(
				"stage budget exhausted after %d/%d vectors; %d faults undecided",
				res.VectorsApplied, len(vectors), countTrue(res.Undecided)))
			return nil
		}
		if err != nil {
			return err
		}
		if res.GoodUnsettledAt > 0 {
			r.degrade("switch-sim", fmt.Sprintf(
				"fault-free machine failed to settle at vector %d; %d/%d vectors applied, %d faults undecided",
				res.GoodUnsettledAt, res.VectorsApplied, len(vectors), countTrue(res.Undecided)))
		}
		// Faults dropped as undecided by the oscillation-strike policy on a
		// completed run are a circuit property, not a resource event: they
		// surface through Result.Undecided and the swsim_faults_undecided
		// counter (mirroring ATPG backtrack-limit aborts).
		return nil
	}); err != nil {
		return nil, err
	}

	if err := r.stage("curves", func(ctx context.Context) error {
		p.Ks = coverage.SampleKs(len(p.TestSet.Patterns), 8)
		if reg != nil {
			reg.Gauge("pipeline_coverage_stuckat").Set(p.TestSet.Coverage(true))
			reg.Gauge("pipeline_theta_final").Set(p.ThetaCurve(false).Final())
			reg.Gauge("pipeline_gamma_final").Set(p.GammaCurve().Final())
			reg.Counter("pipeline_vectors").Add(int64(len(p.TestSet.Patterns)))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return p, nil
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// StuckAtDetections returns the stuck-at first-detection indices with
// untestable (redundant) faults excluded — the paper neglects redundant
// faults so that T(k) → 1.
func (p *Pipeline) StuckAtDetections() []int {
	var out []int
	for i := range p.StuckAt {
		if p.TestSet.Untestable[i] {
			continue
		}
		out = append(out, p.TestSet.DetectedAt[i])
	}
	return out
}

// TCurve returns the stuck-at coverage curve T(k) over testable faults.
func (p *Pipeline) TCurve() coverage.Curve {
	return coverage.FromDetections(p.StuckAtDetections(), nil, p.Ks)
}

// Weights returns the realistic fault weights aligned with Faults.Faults.
func (p *Pipeline) Weights() []float64 {
	w := make([]float64, len(p.Faults.Faults))
	for i, f := range p.Faults.Faults {
		w[i] = f.Weight
	}
	return w
}

// ThetaCurve returns the weighted realistic coverage curve Θ(k); with iddq
// true, quiescent-current detections count as well (ablation ABL-2).
func (p *Pipeline) ThetaCurve(iddq bool) coverage.Curve {
	det := p.detections(iddq)
	return coverage.FromDetections(det, p.Weights(), p.Ks)
}

// GammaCurve returns the unweighted realistic coverage curve Γ(k).
func (p *Pipeline) GammaCurve() coverage.Curve {
	return coverage.FromDetections(p.detections(false), nil, p.Ks)
}

func (p *Pipeline) detections(iddq bool) []int {
	det := make([]int, len(p.Faults.Faults))
	copy(det, p.SwitchRes.DetectedAt)
	if iddq {
		for i, d := range p.SwitchRes.IDDQAt {
			if d > 0 && (det[i] == 0 || d < det[i]) {
				det[i] = d
			}
		}
	}
	return det
}

// Summary summarizes the pipeline in a human-readable block. (The
// machine-readable run report lives in the Report field.)
func (p *Pipeline) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit    : %s\n", p.Netlist.ComputeStats())
	fmt.Fprintf(&b, "layout     : %s\n", p.Layout.ComputeStats())
	fmt.Fprintf(&b, "transistor : %s\n", p.Circuit.ComputeStats())
	counts := p.Faults.CountByKind()
	fmt.Fprintf(&b, "faults     : %d bridges, %d input opens, %d driver opens (Y scaled to %.3f)\n",
		counts[fault.KindBridge], counts[fault.KindOpenInput], counts[fault.KindOpenDriver], p.Yield)
	fmt.Fprintf(&b, "test set   : %d vectors (%d random + %d deterministic), stuck-at coverage %.4f (testable)\n",
		len(p.TestSet.Patterns), p.TestSet.RandomCount,
		len(p.TestSet.Patterns)-p.TestSet.RandomCount, p.TestSet.Coverage(true))
	thetaEnd := p.ThetaCurve(false).Final()
	gammaEnd := p.GammaCurve().Final()
	fmt.Fprintf(&b, "realistic  : Θ(final) = %.4f, Γ(final) = %.4f\n", thetaEnd, gammaEnd)
	for _, d := range p.Degradations {
		fmt.Fprintf(&b, "degraded   : %s: %s\n", d.Stage, d.Reason)
	}
	return b.String()
}
