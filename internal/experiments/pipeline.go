// Package experiments reproduces the paper's evaluation: it wires the full
// pipeline (standard-cell layout → inductive fault extraction → gate- and
// switch-level fault simulation → defect-level models) and provides one
// driver per figure/example, each returning its data along with an ASCII
// rendering. See DESIGN.md for the per-experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
package experiments

import (
	"fmt"
	"strings"

	"defectsim/internal/atpg"
	"defectsim/internal/coverage"
	"defectsim/internal/defect"
	"defectsim/internal/extract"
	"defectsim/internal/fault"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
	"defectsim/internal/switchsim"
	"defectsim/internal/transistor"
)

// Config parameterizes a pipeline run.
type Config struct {
	// Seed drives benchmark generation and the random vector prefix.
	Seed int64
	// TargetYield rescales the extracted fault weights (paper: 0.75).
	// Zero disables scaling.
	TargetYield float64
	// RandomVectors is the length of the random prefix before deterministic
	// top-up (paper: enough for >80% stuck-at coverage).
	RandomVectors int
	// BacktrackLimit bounds the deterministic generator per fault.
	BacktrackLimit int
	// Stats is the spot-defect characterization (default defect.Typical()).
	Stats defect.Statistics
	// Obs, when non-nil, receives a span per pipeline stage and the
	// subsystem metrics; the resulting run report lands in
	// Pipeline.Report. The default nil tracer costs nothing.
	Obs *obs.Tracer
}

// DefaultConfig returns the configuration of the paper's c432 experiment.
func DefaultConfig() Config {
	return Config{
		Seed:           1994,
		TargetYield:    0.75,
		RandomVectors:  64,
		BacktrackLimit: 2000,
		Stats:          defect.Typical(),
	}
}

// Pipeline is a fully simulated design: every artifact the figures need.
type Pipeline struct {
	Config  Config
	Netlist *netlist.Netlist
	Layout  *layout.Layout
	Circuit *transistor.Circuit

	// Realistic faults with weights scaled to the target yield.
	Faults *fault.List
	Yield  float64

	// Stuck-at side: collapsed universe, test set (random + deterministic),
	// detection data.
	StuckAt []fault.StuckAt
	TestSet *atpg.TestSet

	// Switch-level side: realistic-fault detection data under the same
	// vectors.
	SwitchRes *switchsim.Result

	// Ks is the log-spaced vector-count grid shared by all curves.
	Ks []int

	// Report is the observability run report (stage tree + metrics
	// snapshot); nil unless Config.Obs was set.
	Report *obs.Report
}

// Run executes the full pipeline for nl. With cfg.Obs set, every stage is
// wrapped in a span (wall clock + allocation delta), the subsystems record
// their metrics, and the combined run report lands in Pipeline.Report.
func Run(nl *netlist.Netlist, cfg Config) (*Pipeline, error) {
	p := &Pipeline{Config: cfg, Netlist: nl}
	tr := cfg.Obs
	reg := tr.Metrics()
	run := tr.StartSpan("pipeline")
	defer func() {
		run.End()
		if tr != nil {
			p.Report = tr.Report(nl.Name)
		}
	}()

	var err error
	sp := tr.StartSpan("layout")
	p.Layout, err = layout.Build(nl, nil)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: layout: %w", err)
	}

	sp = tr.StartSpan("lvs")
	err = extract.VerifyLVS(p.Layout)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	sp = tr.StartSpan("extract")
	p.Faults = extract.FaultsObs(p.Layout, cfg.Stats, reg)
	sp.End()
	if len(p.Faults.Faults) == 0 {
		return nil, fmt.Errorf("experiments: no faults extracted from %s", nl.Name)
	}

	sp = tr.StartSpan("scale-weights")
	if cfg.TargetYield > 0 {
		p.Faults.ScaleToYield(cfg.TargetYield)
	}
	p.Yield = p.Faults.Yield()
	reg.Gauge("pipeline_yield").Set(p.Yield)
	sp.End()

	sp = tr.StartSpan("transistor-map")
	p.Circuit = transistor.FromLayout(p.Layout)
	err = p.Circuit.Validate()
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	sp = tr.StartSpan("stuckat-collapse")
	p.StuckAt = fault.StuckAtUniverse(nl)
	sp.End()

	sp = tr.StartSpan("atpg")
	p.TestSet, err = atpg.BuildTestSetObs(nl, p.StuckAt, cfg.RandomVectors, uint64(cfg.Seed), cfg.BacktrackLimit, tr)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: atpg: %w", err)
	}

	sp = tr.StartSpan("switch-sim")
	vectors := make([]switchsim.Vector, len(p.TestSet.Patterns))
	for i, pat := range p.TestSet.Patterns {
		v := make(switchsim.Vector, len(pat))
		for j, b := range pat {
			v[j] = switchsim.Val(b)
		}
		vectors[i] = v
	}
	p.SwitchRes, err = switchsim.SimulateFaultsObs(p.Circuit, p.Faults, vectors, 0, switchsim.BridgeG, reg)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: switchsim: %w", err)
	}

	sp = tr.StartSpan("curves")
	p.Ks = coverage.SampleKs(len(p.TestSet.Patterns), 8)
	if reg != nil {
		reg.Gauge("pipeline_coverage_stuckat").Set(p.TestSet.Coverage(true))
		reg.Gauge("pipeline_theta_final").Set(p.ThetaCurve(false).Final())
		reg.Gauge("pipeline_gamma_final").Set(p.GammaCurve().Final())
		reg.Counter("pipeline_vectors").Add(int64(len(p.TestSet.Patterns)))
	}
	sp.End()
	return p, nil
}

// StuckAtDetections returns the stuck-at first-detection indices with
// untestable (redundant) faults excluded — the paper neglects redundant
// faults so that T(k) → 1.
func (p *Pipeline) StuckAtDetections() []int {
	var out []int
	for i := range p.StuckAt {
		if p.TestSet.Untestable[i] {
			continue
		}
		out = append(out, p.TestSet.DetectedAt[i])
	}
	return out
}

// TCurve returns the stuck-at coverage curve T(k) over testable faults.
func (p *Pipeline) TCurve() coverage.Curve {
	return coverage.FromDetections(p.StuckAtDetections(), nil, p.Ks)
}

// Weights returns the realistic fault weights aligned with Faults.Faults.
func (p *Pipeline) Weights() []float64 {
	w := make([]float64, len(p.Faults.Faults))
	for i, f := range p.Faults.Faults {
		w[i] = f.Weight
	}
	return w
}

// ThetaCurve returns the weighted realistic coverage curve Θ(k); with iddq
// true, quiescent-current detections count as well (ablation ABL-2).
func (p *Pipeline) ThetaCurve(iddq bool) coverage.Curve {
	det := p.detections(iddq)
	return coverage.FromDetections(det, p.Weights(), p.Ks)
}

// GammaCurve returns the unweighted realistic coverage curve Γ(k).
func (p *Pipeline) GammaCurve() coverage.Curve {
	return coverage.FromDetections(p.detections(false), nil, p.Ks)
}

func (p *Pipeline) detections(iddq bool) []int {
	det := make([]int, len(p.Faults.Faults))
	copy(det, p.SwitchRes.DetectedAt)
	if iddq {
		for i, d := range p.SwitchRes.IDDQAt {
			if d > 0 && (det[i] == 0 || d < det[i]) {
				det[i] = d
			}
		}
	}
	return det
}

// Summary summarizes the pipeline in a human-readable block. (The
// machine-readable run report lives in the Report field.)
func (p *Pipeline) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit    : %s\n", p.Netlist.ComputeStats())
	fmt.Fprintf(&b, "layout     : %s\n", p.Layout.ComputeStats())
	fmt.Fprintf(&b, "transistor : %s\n", p.Circuit.ComputeStats())
	counts := p.Faults.CountByKind()
	fmt.Fprintf(&b, "faults     : %d bridges, %d input opens, %d driver opens (Y scaled to %.3f)\n",
		counts[fault.KindBridge], counts[fault.KindOpenInput], counts[fault.KindOpenDriver], p.Yield)
	fmt.Fprintf(&b, "test set   : %d vectors (%d random + %d deterministic), stuck-at coverage %.4f (testable)\n",
		len(p.TestSet.Patterns), p.TestSet.RandomCount,
		len(p.TestSet.Patterns)-p.TestSet.RandomCount, p.TestSet.Coverage(true))
	thetaEnd := p.ThetaCurve(false).Final()
	gammaEnd := p.GammaCurve().Final()
	fmt.Fprintf(&b, "realistic  : Θ(final) = %.4f, Γ(final) = %.4f\n", thetaEnd, gammaEnd)
	return b.String()
}
