package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"defectsim/internal/coverage"
	"defectsim/internal/dlmodel"
	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/montecarlo"
	"defectsim/internal/textplot"
	"defectsim/internal/timing"
)

// LotValidation (VAL-1) compares the closed-form defect level
// DL = 1 − Y^(1−Θ(k)) against the *empirical* defect level of a simulated
// production lot at several test lengths k — the experiment a 1994 fab
// could only approximate with real fallout data.
type LotValidation struct {
	Dies   int
	Rows   []LotValidationRow
	MaxErr float64 // worst relative |empirical − model| / model
}

// LotValidationRow is one test-length sample.
type LotValidationRow struct {
	K           int
	Theta       float64
	ModelDL     float64
	EmpiricalDL float64
	Escapes     int
}

// RunLotValidation simulates dies per test length on the pipeline's fault
// statistics and detection data. The Monte Carlo campaigns of the test
// lengths are independent and seeded per length, so they run concurrently
// on the pipeline's worker budget (p.Config.Workers) with results
// identical to a serial sweep.
func RunLotValidation(p *Pipeline, dies int, seed int64) *LotValidation {
	v := &LotValidation{Dies: dies}
	ths := p.ThetaCurve(false)
	var sel []int
	for i, k := range p.Ks {
		if k < 2 && len(p.Ks) > 4 && i > 0 {
			continue
		}
		sel = append(sel, i)
	}
	v.Rows = make([]LotValidationRow, len(sel))
	// forEach with a background context: the campaign has no failure or
	// cancellation path of its own, it inherits bounds from the caller.
	_ = forEach(context.Background(), p.Config.Workers, len(sel), func(j int) error {
		i := sel[j]
		k := p.Ks[i]
		res := montecarlo.SimulateLot(p.Faults, p.SwitchRes.DetectedAt, k, dies, seed+int64(k))
		model := dlmodel.Weighted(p.Yield, ths[i].C)
		v.Rows[j] = LotValidationRow{
			K: k, Theta: ths[i].C, ModelDL: model,
			EmpiricalDL: res.DefectLevel(), Escapes: res.Escapes,
		}
		return nil
	})
	for _, row := range v.Rows {
		if row.ModelDL > 1e-6 {
			if e := math.Abs(row.EmpiricalDL-row.ModelDL) / row.ModelDL; e > v.MaxErr {
				v.MaxErr = e
			}
		}
	}
	return v
}

// Render prints the validation table.
func (v *LotValidation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "VAL-1  Lot simulation vs closed form (%d dies per test length)\n", v.Dies)
	tb := textplot.Table{Headers: []string{"k", "Θ(k)", "model DL (ppm)", "empirical DL (ppm)", "escapes"}}
	for _, r := range v.Rows {
		tb.AddRow(r.K, fmt.Sprintf("%.4f", r.Theta),
			fmt.Sprintf("%.0f", 1e6*r.ModelDL),
			fmt.Sprintf("%.0f", 1e6*r.EmpiricalDL), r.Escapes)
	}
	b.WriteString(tb.Render())
	fmt.Fprintf(&b, "worst relative deviation: %.1f%%\n", 100*v.MaxErr)
	return b.String()
}

// InjectionValidation (VAL-2) drops random spot defects on the mask
// geometry and checks, independently of the critical-area engine, that
// every geometrically observed fault was predicted by the extraction and
// that hit frequencies track the extracted weights.
type InjectionValidation struct {
	Defects     int
	Bridges     int
	Opens       int
	Benign      int
	Complete    bool
	CompleteErr string
	TopQuartile float64 // fraction of bridge hits on the top weight quartile
}

// RunInjectionValidation executes the campaign on the pipeline's layout.
func RunInjectionValidation(p *Pipeline, defects int, seed int64) *InjectionValidation {
	rep := montecarlo.InjectDefects(p.Layout, p.Config.Stats, defects, seed)
	v := &InjectionValidation{
		Defects: rep.Total,
		Bridges: rep.ByEffect[montecarlo.EffectBridge],
		Opens:   rep.ByEffect[montecarlo.EffectOpen],
		Benign:  rep.ByEffect[montecarlo.EffectBenign],
	}
	if err := rep.ValidateAgainst(p.Faults); err != nil {
		v.CompleteErr = err.Error()
	} else {
		v.Complete = true
	}
	v.TopQuartile = rep.WeightCorrelation(p.Faults, 0.25)
	return v
}

// Render prints the validation summary.
func (v *InjectionValidation) Render() string {
	status := "COMPLETE (every observed fault was predicted)"
	if !v.Complete {
		status = "INCOMPLETE: " + v.CompleteErr
	}
	return fmt.Sprintf(
		"VAL-2  Geometric defect injection (%d spot defects)\n"+
			"  effects: %d bridges, %d opens, %d benign\n"+
			"  extraction coverage: %s\n"+
			"  bridge hits on top-25%%-weight faults: %.0f%%\n",
		v.Defects, v.Bridges, v.Opens, v.Benign, status, 100*v.TopQuartile)
}

// DelayAblation (ABL-4) scores the same stuck-at universe under the
// two-pattern transition-fault criterion, quantifying how much longer
// delay-style testing needs the vector sequence to be — the flip side of
// the paper's recommendation to add delay tests for opens.
type DelayAblation struct {
	StuckAtCurve    coverage.Curve
	TransitionCurve coverage.Curve
	SigmaSA         float64
	SigmaTR         float64
}

// RunDelayAblation simulates transition faults on the pipeline's vectors.
func RunDelayAblation(p *Pipeline) (*DelayAblation, error) {
	tr, err := gatesim.SimulateTransitions(p.Netlist, p.StuckAt, p.TestSet.Patterns)
	if err != nil {
		return nil, err
	}
	// Restrict both curves to testable faults, like T(k).
	var saDet, trDet []int
	for i := range p.StuckAt {
		if p.TestSet.Untestable[i] {
			continue
		}
		saDet = append(saDet, p.TestSet.DetectedAt[i])
		trDet = append(trDet, tr.DetectedAt[i])
	}
	a := &DelayAblation{
		StuckAtCurve:    coverage.FromDetections(saDet, nil, p.Ks),
		TransitionCurve: coverage.FromDetections(trDet, nil, p.Ks),
	}
	a.SigmaSA = coverage.FitSigma(a.StuckAtCurve, 1)
	a.SigmaTR = coverage.FitSigma(a.TransitionCurve, 0)
	return a, nil
}

// Render prints the ablation.
func (a *DelayAblation) Render() string {
	var b strings.Builder
	b.WriteString("ABL-4  Transition (delay) testing vs static stuck-at testing\n")
	tb := textplot.Table{Headers: []string{"k", "stuck-at coverage", "transition coverage"}}
	for i := range a.StuckAtCurve {
		tb.AddRow(int(a.StuckAtCurve[i].K),
			fmt.Sprintf("%.4f", a.StuckAtCurve[i].C),
			fmt.Sprintf("%.4f", a.TransitionCurve[i].C))
	}
	b.WriteString(tb.Render())
	fmt.Fprintf(&b, "susceptibilities: σ_SA=e^%.2f  σ_TR=e^%.2f (transition tests need longer sequences)\n",
		math.Log(a.SigmaSA), math.Log(a.SigmaTR))
	return b.String()
}

// PathDelayStudy (ABL-6) evaluates path-delay testing on the K longest
// paths: what fraction of them the stuck-at test set's consecutive pairs
// happen to test non-robustly, plus the circuit's timing profile.
type PathDelayStudy struct {
	K             int
	CriticalDelay float64
	Longest       float64
	Covered       int
	Coverage      float64
}

// RunPathDelayStudy analyzes the pipeline's circuit and scores the K
// longest paths against the test set.
func RunPathDelayStudy(p *Pipeline, k int) (*PathDelayStudy, error) {
	model := timing.DefaultDelays()
	an, err := timing.Analyze(p.Netlist, model)
	if err != nil {
		return nil, err
	}
	paths, err := timing.KLongestPaths(p.Netlist, model, k)
	if err != nil {
		return nil, err
	}
	res, err := timing.PathCoverage(p.Netlist, paths, p.TestSet.Patterns)
	if err != nil {
		return nil, err
	}
	st := &PathDelayStudy{K: len(paths), CriticalDelay: an.CriticalDelay}
	if len(paths) > 0 {
		st.Longest = paths[0].Delay
	}
	for _, d := range res.DetectedAt {
		if d > 0 {
			st.Covered++
		}
	}
	if st.K > 0 {
		st.Coverage = float64(st.Covered) / float64(st.K)
	}
	return st, nil
}

// Render prints the study.
func (st *PathDelayStudy) Render() string {
	return fmt.Sprintf(
		"ABL-6  Path-delay testing of the %d longest paths\n"+
			"  critical delay          : %.2f (longest enumerated: %.2f)\n"+
			"  non-robustly tested     : %d (%.0f%%) by the stuck-at set's pairs\n"+
			"  (the uncovered long paths are why delay testing needs its own\n"+
			"   two-pattern generation, not reused stuck-at vectors)\n",
		st.K, st.CriticalDelay, st.Longest, st.Covered, 100*st.Coverage)
}

// FaultKindBreakdown returns the detection profile per realistic fault
// kind after the full test set — the data behind the Θmax discussion.
func FaultKindBreakdown(p *Pipeline) string {
	k := len(p.TestSet.Patterns)
	det := p.SwitchRes.DetectedBy(k, false)
	var b strings.Builder
	tb := textplot.Table{Headers: []string{"kind", "faults", "detected", "weight", "weight detected"}}
	for _, kind := range []fault.Kind{fault.KindBridge, fault.KindOpenInput, fault.KindOpenDriver} {
		var n, nd int
		var w, wd float64
		for i, f := range p.Faults.Faults {
			if f.Kind != kind {
				continue
			}
			n++
			w += f.Weight
			if det[i] {
				nd++
				wd += f.Weight
			}
		}
		tb.AddRow(kind.String(), n, nd, fmt.Sprintf("%.4f", w), fmt.Sprintf("%.4f", wd))
	}
	b.WriteString(tb.Render())
	return b.String()
}
