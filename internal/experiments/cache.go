package experiments

import (
	"encoding/json"
	"fmt"
	"os"

	"defectsim/internal/atpg"
	"defectsim/internal/coverage"
	"defectsim/internal/extract"
	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/switchsim"
	"defectsim/internal/transistor"
)

// cacheFile is the serialized form of a pipeline's expensive simulation
// results. Everything else (layout, extraction, transistor netlist, the
// fault universes) is deterministic and cheap to rebuild, so only the
// vectors and detection data are stored.
type cacheFile struct {
	Version      int         `json:"version"`
	Circuit      string      `json:"circuit"`
	Config       cacheConfig `json:"config"`
	NumFaults    int         `json:"num_faults"`
	NumStuckAt   int         `json:"num_stuck_at"`
	Patterns     [][]uint8   `json:"patterns"`
	RandomCount  int         `json:"random_count"`
	SADetectedAt []int       `json:"sa_detected_at"`
	Untestable   []bool      `json:"untestable"`
	Aborted      []bool      `json:"aborted"`
	SwDetectedAt []int       `json:"sw_detected_at"`
	IDDQAt       []int       `json:"iddq_at"`
	Oscillations int         `json:"oscillations"`
}

type cacheConfig struct {
	Seed           int64   `json:"seed"`
	TargetYield    float64 `json:"target_yield"`
	RandomVectors  int     `json:"random_vectors"`
	BacktrackLimit int     `json:"backtrack_limit"`
	StatsDigest    string  `json:"stats_digest"`
}

const cacheVersion = 1

func digestConfig(cfg Config) cacheConfig {
	d := ""
	for _, c := range cfg.Stats.Classes {
		d += fmt.Sprintf("%v:%g:%g;", c.Type, c.Density, c.Size.X0)
	}
	d += fmt.Sprintf("max=%d", cfg.Stats.MaxSize)
	return cacheConfig{
		Seed: cfg.Seed, TargetYield: cfg.TargetYield,
		RandomVectors: cfg.RandomVectors, BacktrackLimit: cfg.BacktrackLimit,
		StatsDigest: d,
	}
}

// Save writes the pipeline's simulation results to path.
func (p *Pipeline) Save(path string) error {
	cf := cacheFile{
		Version:      cacheVersion,
		Circuit:      p.Netlist.Name,
		Config:       digestConfig(p.Config),
		NumFaults:    len(p.Faults.Faults),
		NumStuckAt:   len(p.StuckAt),
		RandomCount:  p.TestSet.RandomCount,
		SADetectedAt: p.TestSet.DetectedAt,
		Untestable:   p.TestSet.Untestable,
		Aborted:      p.TestSet.Aborted,
		SwDetectedAt: p.SwitchRes.DetectedAt,
		IDDQAt:       p.SwitchRes.IDDQAt,
		Oscillations: p.SwitchRes.Oscillations,
	}
	for _, pat := range p.TestSet.Patterns {
		cf.Patterns = append(cf.Patterns, []uint8(pat))
	}
	data, err := json.Marshal(&cf)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// RunCached behaves like Run but reuses the simulation results stored at
// path when they match the circuit and configuration, rebuilding only the
// cheap deterministic artifacts. On a cache miss it runs the full pipeline
// and refreshes the file. With cfg.Obs set, a cache hit still produces a
// run report (spanning the rebuild stages, flagged CacheHit) so a traced
// run always explains where its results came from.
func RunCached(nl *netlist.Netlist, cfg Config, path string) (*Pipeline, bool, error) {
	if p, ok := loadCached(nl, cfg, path); ok {
		return p, true, nil
	}
	p, err := Run(nl, cfg)
	if err != nil {
		return nil, false, err
	}
	if err := p.Save(path); err != nil {
		return nil, false, fmt.Errorf("experiments: saving cache: %w", err)
	}
	return p, false, nil
}

func loadCached(nl *netlist.Netlist, cfg Config, path string) (*Pipeline, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, false
	}
	if cf.Version != cacheVersion || cf.Circuit != nl.Name || cf.Config != digestConfig(cfg) {
		return nil, false
	}

	tr := cfg.Obs
	reg := tr.Metrics()
	load := tr.StartSpan("cache-load")
	p := &Pipeline{Config: cfg, Netlist: nl}
	sp := tr.StartSpan("layout")
	p.Layout, err = layout.Build(nl, nil)
	sp.End()
	if err != nil {
		load.End()
		return nil, false
	}
	sp = tr.StartSpan("extract")
	p.Faults = extract.FaultsObs(p.Layout, cfg.Stats, reg)
	sp.End()
	if cfg.TargetYield > 0 && len(p.Faults.Faults) > 0 {
		p.Faults.ScaleToYield(cfg.TargetYield)
	}
	p.Yield = p.Faults.Yield()
	reg.Gauge("pipeline_yield").Set(p.Yield)
	sp = tr.StartSpan("transistor-map")
	p.Circuit = transistor.FromLayout(p.Layout)
	sp.End()
	sp = tr.StartSpan("stuckat-collapse")
	p.StuckAt = fault.StuckAtUniverse(nl)
	sp.End()
	if len(p.Faults.Faults) != cf.NumFaults || len(p.StuckAt) != cf.NumStuckAt ||
		len(cf.SwDetectedAt) != cf.NumFaults || len(cf.SADetectedAt) != cf.NumStuckAt {
		load.End()
		return nil, false // stale cache from an older code version
	}
	p.TestSet = &atpg.TestSet{
		RandomCount: cf.RandomCount,
		DetectedAt:  cf.SADetectedAt,
		Untestable:  cf.Untestable,
		Aborted:     cf.Aborted,
	}
	for _, pat := range cf.Patterns {
		p.TestSet.Patterns = append(p.TestSet.Patterns, gatesim.Pattern(pat))
	}
	p.SwitchRes = &switchsim.Result{
		DetectedAt:   cf.SwDetectedAt,
		IDDQAt:       cf.IDDQAt,
		Oscillations: cf.Oscillations,
	}
	p.Ks = coverage.SampleKs(len(p.TestSet.Patterns), 8)
	if tr != nil {
		reg.Counter("pipeline_cache_hits").Inc()
		reg.Counter("pipeline_vectors").Add(int64(len(p.TestSet.Patterns)))
		load.End()
		p.Report = tr.Report(nl.Name)
		p.Report.CacheHit = true
	}
	return p, true
}
