package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"defectsim/internal/atpg"
	"defectsim/internal/coverage"
	"defectsim/internal/extract"
	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/store"
	"defectsim/internal/switchsim"
	"defectsim/internal/transistor"
)

// cacheEnvelope wraps the serialized payload with an integrity checksum.
// A cache file that fails to parse, fails the checksum or carries the
// wrong version is treated as corrupt: the caller falls back to a fresh
// run and the event is recorded (never an error — the cache is an
// optimization, not a source of truth).
type cacheEnvelope struct {
	Version  int             `json:"version"`
	Checksum string          `json:"checksum"` // sha256 of Payload, hex
	Payload  json.RawMessage `json:"payload"`
}

// cacheFile is the serialized form of a pipeline's expensive simulation
// results. Everything else (layout, extraction, transistor netlist, the
// fault universes) is deterministic and cheap to rebuild, so only the
// vectors and detection data are stored.
type cacheFile struct {
	Circuit      string      `json:"circuit"`
	Config       cacheConfig `json:"config"`
	NumFaults    int         `json:"num_faults"`
	NumStuckAt   int         `json:"num_stuck_at"`
	Patterns     [][]uint8   `json:"patterns"`
	RandomCount  int         `json:"random_count"`
	SADetectedAt []int       `json:"sa_detected_at"`
	Untestable   []bool      `json:"untestable"`
	Aborted      []bool      `json:"aborted"`
	SwDetectedAt []int       `json:"sw_detected_at"`
	IDDQAt       []int       `json:"iddq_at"`
	Undecided    []bool      `json:"undecided"`
	Oscillations int         `json:"oscillations"`
	// VectorsApplied and GoodUnsettledAt complete the Result record so a
	// cache-restored campaign keeps the early-stop accounting contract
	// (Result.DetectedBy clamps to VectorsApplied).
	VectorsApplied  int `json:"vectors_applied"`
	GoodUnsettledAt int `json:"good_unsettled_at"`
	// GoodTrace persists the fault-free machine's settled states (one row
	// per recorded state, one byte per net) so downstream studies on a
	// cache-hit pipeline skip the good-machine pass too. The enclosing
	// envelope checksum is the invalidation key: the trace is only reused
	// when circuit and config digest match.
	GoodTrace          [][]byte `json:"good_trace,omitempty"`
	GoodTraceUnsettled int      `json:"good_trace_unsettled,omitempty"`
}

type cacheConfig struct {
	Seed           int64   `json:"seed"`
	TargetYield    float64 `json:"target_yield"`
	RandomVectors  int     `json:"random_vectors"`
	BacktrackLimit int     `json:"backtrack_limit"`
	StatsDigest    string  `json:"stats_digest"`
}

// cacheVersion 2 introduced the checksummed envelope; 3 added the full
// switch-level Result record (vectors applied, undecided flags, unsettled
// cutoff) and the persisted good-machine trace.
const cacheVersion = 3

// CacheKey returns the result-cache identity of a run: a short hex digest
// of the circuit name and the result-determining configuration fields
// (seed, yield scaling, vector and backtrack budgets, defect statistics).
// Two complete runs with equal keys produce bitwise-identical simulation
// results — execution-only knobs (Workers, Obs, Deadline, StageBudgets)
// do not participate. Deadline/StageBudgets can still truncate a run to
// partial results, which is why RunCachedCtx never saves a
// result-degraded run under this key (see Pipeline.ResultDegraded). The
// key makes a stable cache file name; the serving layer derives its
// coalescing key from it (adding the execution budgets back in, since
// coalesced submitters share one live run).
func CacheKey(circuit string, cfg Config) string {
	dc := digestConfig(cfg)
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%d|%g|%d|%d|%s",
		circuit, dc.Seed, dc.TargetYield, dc.RandomVectors, dc.BacktrackLimit, dc.StatsDigest)))
	return hex.EncodeToString(sum[:16])
}

// savePaths serializes concurrent same-path cache writes within this
// process. The serving layer makes such writes likely (many jobs, one
// cache file per result key); without the lock, two atomic-write renames
// race benignly (last writer wins) but interleaved temp-file churn and
// rename-over-rename traffic is pointless work. Readers still never need
// the lock: loadCached always sees either the old or the new complete
// file, and any corruption falls back to a fresh run. The map holds one
// mutex per distinct cleaned path for the life of the process — bounded
// by the set of cache files, not by the request volume.
var savePaths sync.Map // cleaned path → *sync.Mutex

func savePathLock(path string) *sync.Mutex {
	if abs, err := filepath.Abs(path); err == nil {
		path = abs
	}
	mu, _ := savePaths.LoadOrStore(filepath.Clean(path), &sync.Mutex{})
	return mu.(*sync.Mutex)
}

func digestConfig(cfg Config) cacheConfig {
	d := ""
	for _, c := range cfg.Stats.Classes {
		d += fmt.Sprintf("%v:%g:%g;", c.Type, c.Density, c.Size.X0)
	}
	d += fmt.Sprintf("max=%d", cfg.Stats.MaxSize)
	return cacheConfig{
		Seed: cfg.Seed, TargetYield: cfg.TargetYield,
		RandomVectors: cfg.RandomVectors, BacktrackLimit: cfg.BacktrackLimit,
		StatsDigest: d,
	}
}

// EncodeCache serializes the pipeline's simulation results as the
// checksummed cache envelope — the exact bytes every store backend
// persists and store.VerifyEnvelope validates. Result-degraded runs are
// refused: their partial results would be served to later cache hits as
// if complete (cache-load cannot tell the difference — the key
// deliberately excludes execution budgets).
func (p *Pipeline) EncodeCache() ([]byte, error) {
	if p.ResultDegraded() {
		return nil, fmt.Errorf("experiments: refusing to cache a result-degraded run (%d degradations)", len(p.Degradations))
	}
	cf := cacheFile{
		Circuit:         p.Netlist.Name,
		Config:          digestConfig(p.Config),
		NumFaults:       len(p.Faults.Faults),
		NumStuckAt:      len(p.StuckAt),
		RandomCount:     p.TestSet.RandomCount,
		SADetectedAt:    p.TestSet.DetectedAt,
		Untestable:      p.TestSet.Untestable,
		Aborted:         p.TestSet.Aborted,
		SwDetectedAt:    p.SwitchRes.DetectedAt,
		IDDQAt:          p.SwitchRes.IDDQAt,
		Undecided:       p.SwitchRes.Undecided,
		Oscillations:    p.SwitchRes.Oscillations,
		VectorsApplied:  p.SwitchRes.VectorsApplied,
		GoodUnsettledAt: p.SwitchRes.GoodUnsettledAt,
	}
	for _, pat := range p.TestSet.Patterns {
		cf.Patterns = append(cf.Patterns, []uint8(pat))
	}
	p.traceMu.Lock()
	if tr := p.goodTrace; tr.Complete() {
		for _, st := range tr.States {
			row := make([]byte, len(st))
			for i, v := range st {
				row[i] = byte(v)
			}
			cf.GoodTrace = append(cf.GoodTrace, row)
		}
		cf.GoodTraceUnsettled = tr.UnsettledAt
	}
	p.traceMu.Unlock()
	payload, err := json.Marshal(&cf)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	env := cacheEnvelope{
		Version:  cacheVersion,
		Checksum: hex.EncodeToString(sum[:]),
		Payload:  payload,
	}
	return json.Marshal(&env)
}

// Save writes the pipeline's simulation results to path: a checksummed
// envelope written atomically and durably (temp file + fsync + rename +
// directory fsync, via store.AtomicWrite) so that a crash or a
// concurrent reader never observes a truncated cache. Concurrent Saves
// to the same path within one process are serialized (last writer wins).
// Result-degraded runs are refused — see EncodeCache.
func (p *Pipeline) Save(path string) error {
	data, err := p.EncodeCache()
	if err != nil {
		return err
	}
	mu := savePathLock(path)
	mu.Lock()
	defer mu.Unlock()
	return store.AtomicWrite(path, data)
}

// RunCached behaves like Run but reuses the simulation results stored at
// path when they match the circuit and configuration, rebuilding only the
// cheap deterministic artifacts. On a cache miss it runs the full pipeline
// and refreshes the file. With cfg.Obs set, a cache hit still produces a
// run report (spanning the rebuild stages, flagged CacheHit) so a traced
// run always explains where its results came from.
func RunCached(nl *netlist.Netlist, cfg Config, path string) (*Pipeline, bool, error) {
	return RunCachedCtx(context.Background(), nl, cfg, path)
}

// RunCachedCtx is RunCached under a context (see RunCtx for cancellation
// and budget semantics). Cache corruption — an unreadable, truncated,
// checksum-mismatched or version-skewed file — never fails the call: the
// pipeline runs fresh, the file is rewritten, and the fallback is
// recorded as a pipeline_cache_corrupt metric and a "cache" Degradation.
// A failed cache write degrades the same way instead of erroring.
func RunCachedCtx(ctx context.Context, nl *netlist.Netlist, cfg Config, path string) (*Pipeline, bool, error) {
	return RunStoredCtx(ctx, nl, cfg, fileStore{path: path})
}

// RunStoredCtx is the store-backed generalization of RunCachedCtx: the
// result is looked up in (and on a miss, persisted to) any store.Store —
// the local filesystem cache, a remote peer, or a tiered combination.
// The degradation contract is identical: a corrupt or unreadable entry
// falls back to a fresh run (pipeline_cache_corrupt + "cache"
// Degradation), a failed write degrades instead of erroring, and a
// result-degraded run is never persisted to any backend.
func RunStoredCtx(ctx context.Context, nl *netlist.Netlist, cfg Config, st store.Store) (*Pipeline, bool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, false, err
	}
	reg := cfg.Obs.Metrics()
	key := CacheKey(nl.Name, cfg)
	var corrupt string
	switch data, err := st.Get(ctx, key); {
	case err == nil:
		p, ok, c := decodeCache(ctx, nl, cfg, data)
		if ok {
			return p, true, nil
		}
		corrupt = c
	case errors.Is(err, store.ErrNotFound):
		// Ordinary miss.
	default:
		corrupt = fmt.Sprintf("store %s get failed: %v", st.Name(), err)
	}
	if corrupt != "" {
		// Count before the run so the fallback shows up in the run report.
		reg.Counter("pipeline_cache_corrupt").Inc()
	}
	p, err := RunCtx(ctx, nl, cfg)
	if err != nil {
		return nil, false, err
	}
	degradeCache := func(reason string) {
		p.Degradations = append(p.Degradations, Degradation{Stage: "cache", Reason: reason})
		if p.Report != nil {
			p.Report.Events = append(p.Report.Events, Degradation{Stage: "cache", Reason: reason}.String())
		}
	}
	if corrupt != "" {
		degradeCache("fell back to fresh run: " + corrupt)
	}
	if p.ResultDegraded() {
		// A budget- or deadline-degraded run holds partial results (fewer
		// ATPG patterns, undecided faults). Persisting it would let a later
		// request with no budgets hit the cache and receive the partial data
		// as if it were complete — so degraded runs are never saved to any
		// backend; the next unconstrained run misses, runs in full, and
		// populates the store.
		reg.Counter("pipeline_cache_save_skipped_degraded").Inc()
		if p.Report != nil {
			p.Report.Events = append(p.Report.Events, "cache: degraded run not saved (partial results)")
		}
	} else if err := saveTo(ctx, p, st, key); err != nil {
		reg.Counter("pipeline_cache_save_failures").Inc()
		degradeCache("cache write failed: " + err.Error())
	}
	return p, false, nil
}

// saveTo encodes the run and persists it under its cache key.
func saveTo(ctx context.Context, p *Pipeline, st store.Store, key string) error {
	data, err := p.EncodeCache()
	if err != nil {
		return err
	}
	return st.Put(ctx, key, data)
}

// fileStore adapts a single cache-file path to the Store interface so
// RunCachedCtx shares the store-backed engine. The key is ignored: the
// path, chosen by the caller, already encodes the identity (the serving
// layer names files <key>.json; the CLI uses a fixed path per circuit).
type fileStore struct{ path string }

func (f fileStore) Name() string { return "file" }

func (f fileStore) Get(_ context.Context, _ string) ([]byte, error) {
	data, err := os.ReadFile(f.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", store.ErrNotFound, f.path)
		}
		return nil, err
	}
	return data, nil
}

func (f fileStore) Put(_ context.Context, _ string, data []byte) error {
	mu := savePathLock(f.path)
	mu.Lock()
	defer mu.Unlock()
	return store.AtomicWrite(f.path, data)
}

func (f fileStore) Stat(_ context.Context, _ string) (bool, error) {
	if _, err := os.Stat(f.path); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// loadCached attempts a cache hit from a file path. The corrupt return
// is non-empty when the file exists but is unusable (parse failure,
// checksum mismatch, version skew); an absent file or a clean
// config/circuit mismatch is an ordinary miss with corrupt == "".
func loadCached(ctx context.Context, nl *netlist.Netlist, cfg Config, path string) (p *Pipeline, ok bool, corrupt string) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, ""
		}
		return nil, false, fmt.Sprintf("unreadable cache file %s: %v", path, err)
	}
	return decodeCache(ctx, nl, cfg, data)
}

// DecodeCached rebuilds a pipeline from envelope bytes fetched out of a
// store backend — the forwarding path uses it to adopt a result computed
// by the key's ring owner. Unlike the cache-miss path it returns an
// error rather than silently falling back: the caller explicitly fetched
// these bytes and needs to know why they were unusable.
func DecodeCached(ctx context.Context, nl *netlist.Netlist, cfg Config, data []byte) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p, ok, corrupt := decodeCache(ctx, nl, cfg, data)
	if ok {
		return p, nil
	}
	if corrupt == "" {
		corrupt = "envelope does not match this circuit/config (different cache key?)"
	}
	return nil, fmt.Errorf("experiments: decode cached result: %s", corrupt)
}

// decodeCache attempts a cache hit from envelope bytes (see loadCached
// for the ok/corrupt contract).
func decodeCache(ctx context.Context, nl *netlist.Netlist, cfg Config, data []byte) (p *Pipeline, ok bool, corrupt string) {
	var env cacheEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, false, fmt.Sprintf("cache envelope does not parse: %v", err)
	}
	if env.Version != cacheVersion {
		return nil, false, fmt.Sprintf("cache envelope has version %d, want %d", env.Version, cacheVersion)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.Checksum {
		return nil, false, "cache envelope fails its checksum (truncated or corrupted)"
	}
	var cf cacheFile
	if err := json.Unmarshal(env.Payload, &cf); err != nil {
		return nil, false, fmt.Sprintf("cache payload does not parse: %v", err)
	}
	if cf.Circuit != nl.Name || cf.Config != digestConfig(cfg) {
		return nil, false, "" // ordinary miss: different circuit or config
	}

	tr := cfg.Obs
	reg := tr.Metrics()
	load := tr.StartSpan("cache-load")
	p = &Pipeline{Config: cfg, Netlist: nl}
	var err error
	sp := tr.StartSpan("layout")
	p.Layout, err = layout.BuildCtx(ctx, nl, nil)
	sp.End()
	if err != nil {
		load.End()
		return nil, false, ""
	}
	sp = tr.StartSpan("extract")
	p.Faults, err = extract.FaultsCtx(ctx, p.Layout, cfg.Stats, reg)
	sp.End()
	if err != nil {
		load.End()
		return nil, false, ""
	}
	if cfg.TargetYield > 0 && len(p.Faults.Faults) > 0 {
		p.Faults.ScaleToYield(cfg.TargetYield)
	}
	p.Yield = p.Faults.Yield()
	reg.Gauge("pipeline_yield").Set(p.Yield)
	sp = tr.StartSpan("transistor-map")
	p.Circuit = transistor.FromLayout(p.Layout)
	sp.End()
	sp = tr.StartSpan("stuckat-collapse")
	p.StuckAt = fault.StuckAtUniverse(nl)
	sp.End()
	if len(p.Faults.Faults) != cf.NumFaults || len(p.StuckAt) != cf.NumStuckAt ||
		len(cf.SwDetectedAt) != cf.NumFaults || len(cf.SADetectedAt) != cf.NumStuckAt ||
		len(cf.Undecided) != cf.NumFaults {
		load.End()
		return nil, false, "" // stale cache from an older code version
	}
	p.TestSet = &atpg.TestSet{
		RandomCount: cf.RandomCount,
		DetectedAt:  cf.SADetectedAt,
		Untestable:  cf.Untestable,
		Aborted:     cf.Aborted,
	}
	for _, pat := range cf.Patterns {
		p.TestSet.Patterns = append(p.TestSet.Patterns, gatesim.Pattern(pat))
	}
	p.SwitchRes = &switchsim.Result{
		DetectedAt:      cf.SwDetectedAt,
		IDDQAt:          cf.IDDQAt,
		Undecided:       cf.Undecided,
		Oscillations:    cf.Oscillations,
		VectorsApplied:  cf.VectorsApplied,
		GoodUnsettledAt: cf.GoodUnsettledAt,
	}
	// Restore the persisted good trace so downstream studies on this
	// cache-hit pipeline reuse it instead of recapturing. A trace that does
	// not match the rebuilt circuit (or is incomplete) is dropped silently —
	// it is an optimization, and GoodTrace recaptures lazily.
	if len(cf.GoodTrace) > 0 {
		tr := &switchsim.GoodTrace{Vectors: p.Vectors(), UnsettledAt: cf.GoodTraceUnsettled}
		valid := true
		for _, row := range cf.GoodTrace {
			if len(row) != p.Circuit.NumNets {
				valid = false
				break
			}
			st := make([]switchsim.Val, len(row))
			for i, b := range row {
				st[i] = switchsim.Val(b)
			}
			tr.States = append(tr.States, st)
		}
		if valid && tr.Complete() {
			p.goodTrace = tr
			reg.Gauge("swsim_goodtrace_bytes").Set(float64(tr.Bytes()))
		}
	}
	p.Ks = coverage.SampleKs(len(p.TestSet.Patterns), 8)
	if tr != nil {
		reg.Counter("pipeline_cache_hits").Inc()
		reg.Counter("pipeline_vectors").Add(int64(len(p.TestSet.Patterns)))
		load.End()
		p.Report = tr.Report(nl.Name)
		p.Report.CacheHit = true
	}
	return p, true, ""
}
