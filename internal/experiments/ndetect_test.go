package experiments

import (
	"context"
	"strings"
	"testing"

	"defectsim/internal/netlist"
)

func TestNDetectStudyC432Class(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RandomVectors = 32
	p, err := Run(netlist.C432Class(cfg.Seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const maxN = 3
	st, err := RunNDetectStudy(context.Background(), p, maxN)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Ns) != maxN {
		t.Fatalf("swept %d levels, want %d", len(st.Ns), maxN)
	}
	if st.Vectors[0] != len(p.TestSet.Patterns) {
		t.Fatalf("|T(1)| = %d, pipeline set has %d", st.Vectors[0], len(p.TestSet.Patterns))
	}
	if st.Added[0] != 0 {
		t.Fatalf("level 1 added %d vectors, want 0", st.Added[0])
	}
	for i := 1; i < len(st.Ns); i++ {
		// The acceptance criterion: |T(n)| monotone non-decreasing.
		if st.Vectors[i] < st.Vectors[i-1] {
			t.Fatalf("|T(%d)| = %d < |T(%d)| = %d", st.Ns[i], st.Vectors[i], st.Ns[i-1], st.Vectors[i-1])
		}
		if st.Vectors[i] != st.Vectors[i-1]+st.Added[i] {
			t.Fatalf("level %d: %d != %d + %d", st.Ns[i], st.Vectors[i], st.Vectors[i-1], st.Added[i])
		}
		// More vectors can only help the realistic coverage.
		if st.Theta[i] < st.Theta[i-1]-1e-12 {
			t.Fatalf("Θ(%d) = %.6f < Θ(%d) = %.6f", st.Ns[i], st.Theta[i], st.Ns[i-1], st.Theta[i-1])
		}
		if st.DL[i] > st.DL[i-1]+1e-12 {
			t.Fatalf("DL(%d) = %.6g > DL(%d) = %.6g", st.Ns[i], st.DL[i], st.Ns[i-1], st.DL[i-1])
		}
	}
	for i, th := range st.Theta {
		if th <= 0 || th > 1 {
			t.Fatalf("Θ(%d) = %v out of range", st.Ns[i], th)
		}
		if st.DL[i] < 0 || st.DL[i] >= 1 {
			t.Fatalf("DL(%d) = %v out of range", st.Ns[i], st.DL[i])
		}
	}
	out := st.Render()
	if !strings.Contains(out, "ABL-9") || !strings.Contains(out, "DL(n) ppm") {
		t.Fatalf("render missing headers:\n%s", out)
	}
}

func TestNDetectStudyRejectsBadN(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RandomVectors = 8
	p, err := Run(netlist.C17(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunNDetectStudy(context.Background(), p, 0); err == nil {
		t.Fatal("accepted maxN=0")
	}
}

func TestNDetectStudyCancellation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RandomVectors = 8
	p, err := Run(netlist.C432Class(cfg.Seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunNDetectStudy(ctx, p, 3); err == nil {
		t.Fatal("cancelled study returned nil error")
	}
}
