package experiments

import (
	"fmt"
	"math/rand"
	"testing"

	"defectsim/internal/atpg"
	"defectsim/internal/extract"
	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/switchsim"
	"defectsim/internal/transistor"
)

// TestRandomCircuitSweep is the cross-package property sweep: for a batch
// of random circuits it checks that (a) the generated layout passes LVS,
// (b) the switch-level good machine agrees with gate-level logic on random
// vectors, and (c) deterministic ATPG reaches full coverage of testable
// faults with patterns the reference simulator confirms.
func TestRandomCircuitSweep(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			t.Parallel() // the seeds are independent end-to-end pipelines
			nl := netlist.RandomCircuit(fmt.Sprintf("rnd%d", seed), seed, 10, 4, 30)

			// (a) layout + LVS.
			L, err := layout.Build(nl, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := extract.VerifyLVS(L); err != nil {
				t.Fatal(err)
			}

			// (b) switch-level vs gate-level equivalence.
			c := transistor.FromLayout(L)
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			var vecs []switchsim.Vector
			var pis [][]uint64
			for k := 0; k < 24; k++ {
				v := make(switchsim.Vector, len(nl.PIs))
				w := make([]uint64, len(nl.PIs))
				for j := range v {
					b := switchsim.Val(rng.Intn(2))
					v[j] = b
					w[j] = uint64(b)
				}
				vecs = append(vecs, v)
				pis = append(pis, w)
			}
			outs, err := switchsim.Run(c, vecs)
			if err != nil {
				t.Fatal(err)
			}
			for k := range vecs {
				vals, err := nl.Eval(pis[k])
				if err != nil {
					t.Fatal(err)
				}
				for o, po := range nl.POs {
					if uint64(outs[k][o]) != vals[po]&1 {
						t.Fatalf("vector %d PO %d: switch %v vs gate %d",
							k, o, outs[k][o], vals[po]&1)
					}
				}
			}

			// (c) ATPG closes the coverage gap with verified patterns.
			faults := fault.StuckAtUniverse(nl)
			ts, err := atpg.BuildTestSet(nl, faults, 16, uint64(seed), 3000)
			if err != nil {
				t.Fatal(err)
			}
			aborted := 0
			for i := range faults {
				if ts.Aborted[i] {
					aborted++
				}
			}
			if cov := ts.Coverage(true); cov < 1.0 && aborted == 0 {
				t.Fatalf("testable coverage %.4f with no aborts", cov)
			}
			res, err := gatesim.Simulate(nl, faults, ts.Patterns)
			if err != nil {
				t.Fatal(err)
			}
			for i := range faults {
				if (ts.DetectedAt[i] > 0) != (res.DetectedAt[i] > 0) {
					t.Fatalf("fault %v: ATPG bookkeeping disagrees with reference simulation", faults[i])
				}
			}
		})
	}
}

// TestRandomCircuitExtractionInvariants checks extraction invariants on
// random layouts: positive weights, ordered bridge pairs, and the yield
// identity Y = e^{−Σw} surviving scaling.
func TestRandomCircuitExtractionInvariants(t *testing.T) {
	for seed := int64(200); seed < 204; seed++ {
		nl := netlist.RandomCircuit(fmt.Sprintf("rx%d", seed), seed, 8, 3, 20)
		L, err := layout.Build(nl, nil)
		if err != nil {
			t.Fatal(err)
		}
		list := extract.Faults(L, DefaultConfig().Stats)
		if len(list.Faults) == 0 {
			t.Fatal("no faults")
		}
		for _, f := range list.Faults {
			if f.Weight <= 0 {
				t.Fatalf("weight %g", f.Weight)
			}
			if f.Kind == fault.KindBridge && f.NetA >= f.NetB {
				t.Fatal("bridge pair unordered")
			}
		}
		list.ScaleToYield(0.6)
		if y := list.Yield(); y < 0.5999 || y > 0.6001 {
			t.Fatalf("yield identity broken: %g", y)
		}
	}
}
