package experiments

import (
	"context"
	"fmt"

	"defectsim/internal/diagnose"
	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/layout"
	"defectsim/internal/switchsim"
)

// DiagnosisStudy (VAL-3) closes the loop from fallout to physical defect:
// for real (switch-level) bridge defects, the observed tester failures are
// matched against the single stuck-at dictionary, and a diagnosis counts
// as localized when a top-ranked surrogate stuck-at candidate sits on one
// of the two physically bridged nets. This is the modern "stuck-at
// surrogate" diagnosis flow evaluated on ground-truth defects the
// simulator knows exactly.
type DiagnosisStudy struct {
	Bridges     int // diagnosed bridge defects
	Localized   int // a bridged net appears in the top-K implicated nets
	TopK        int
	MeanRank    float64 // mean rank (1-based) of the first correct net
	Undiagnosed int     // bridges with no failing observation
}

// RunDiagnosisStudy diagnoses up to maxBridges detected signal-net bridges
// with a top-K implicated-net budget.
func RunDiagnosisStudy(p *Pipeline, maxBridges, topK int) (*DiagnosisStudy, error) {
	dict, err := diagnose.Build(p.Netlist, p.StuckAt, p.TestSet.Patterns)
	if err != nil {
		return nil, err
	}
	vectors := p.Vectors()
	// One shared good trace replaces the per-bridge fault-free replay (up
	// to maxBridges full re-simulations). Only a trace that settled through
	// the whole sequence preserves observeBridge's exact skip semantics; a
	// truncated one falls back to live stepping.
	trace, err := p.GoodTrace(context.Background())
	if err != nil {
		return nil, err
	}
	if trace.UnsettledAt != 0 || trace.Applied() < len(vectors) {
		trace = nil
	}

	st := &DiagnosisStudy{TopK: topK}
	var rankSum int
	for i, f := range p.Faults.Faults {
		if st.Bridges >= maxBridges {
			break
		}
		if f.Kind != fault.KindBridge || p.SwitchRes.DetectedAt[i] == 0 {
			continue
		}
		a, b := p.Layout.Nets[f.NetA], p.Layout.Nets[f.NetB]
		if a.Kind != layout.KindSignal || b.Kind != layout.KindSignal {
			continue
		}
		obs, err := observeBridge(p, f, vectors, trace)
		if err != nil {
			return nil, err
		}
		if len(obs) == 0 {
			st.Undiagnosed++
			continue
		}
		st.Bridges++
		cands := dict.Diagnose(obs, 0)
		nets := diagnose.ImplicatedNets(cands)
		if len(nets) > topK {
			nets = nets[:topK]
		}
		for rank, net := range nets {
			if net == a.NetlistNet || net == b.NetlistNet {
				st.Localized++
				rankSum += rank + 1
				break
			}
		}
	}
	if st.Localized > 0 {
		st.MeanRank = float64(rankSum) / float64(st.Localized)
	}
	return st, nil
}

// observeBridge replays the test set on the bridged machine and collects
// the definite primary-output mismatches — what a tester's datalog holds.
// A non-nil trace must settle through all of vectors; its recorded states
// then stand in for the fault-free replay.
func observeBridge(p *Pipeline, f fault.Realistic, vectors []switchsim.Vector, trace *switchsim.GoodTrace) ([]gatesim.Fail, error) {
	m, verdict := switchsim.NewFaultMachine(p.Circuit, f)
	if verdict != switchsim.VerdictSimulate {
		return nil, nil
	}
	var good *switchsim.Machine
	if trace == nil {
		good = switchsim.NewMachine(p.Circuit)
	}
	var obs []gatesim.Fail
	for k, vec := range vectors {
		if good != nil && !good.Apply(vec) {
			continue
		}
		if !m.Apply(vec) {
			continue
		}
		goodVal := func(po int) switchsim.Val {
			if good != nil {
				return good.Val(po)
			}
			return trace.States[k+1][po]
		}
		var pm uint64
		for oi, po := range p.Circuit.POs {
			gv, fv := goodVal(po), m.Val(po)
			if gv != switchsim.VX && fv != switchsim.VX && gv != fv {
				pm |= 1 << uint(oi)
			}
		}
		if pm != 0 {
			obs = append(obs, gatesim.Fail{Vector: k, POMask: pm})
		}
	}
	return obs, nil
}

// Render prints the study.
func (st *DiagnosisStudy) Render() string {
	rate := 0.0
	if st.Bridges > 0 {
		rate = float64(st.Localized) / float64(st.Bridges)
	}
	return fmt.Sprintf(
		"VAL-3  Bridge diagnosis through stuck-at surrogates\n"+
			"  diagnosed bridges      : %d (+%d with no observable failures)\n"+
			"  localized in top-%d nets: %d (%.0f%%)\n"+
			"  mean rank of first hit : %.1f\n",
		st.Bridges, st.Undiagnosed, st.TopK, st.Localized, 100*rate, st.MeanRank)
}
