package experiments

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"defectsim/internal/netlist"
)

// TestConcurrentCacheSamePath hammers one cache path from many goroutines
// — the access pattern a serving daemon produces — and pins the contract:
// every call succeeds, partial reads during rename races fall back to a
// fresh run (never an error), and the file left behind is a loadable
// cache for whichever config wrote last. Run under -race in CI.
func TestConcurrentCacheSamePath(t *testing.T) {
	nl := netlist.RippleAdder(3)
	path := filepath.Join(t.TempDir(), "shared.cache")
	cfgA := smallConfig()
	cfgA.RandomVectors = 8
	cfgB := cfgA
	cfgB.Seed = cfgA.Seed + 1 // different digest: A and B keep evicting each other

	const goroutines = 6
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		cfg := cfgA
		if g%2 == 1 {
			cfg = cfgB
		}
		wg.Add(1)
		go func(cfg Config) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p, _, err := RunCachedCtx(context.Background(), nl, cfg, path)
				if err != nil {
					errs <- err
					return
				}
				if p.TestSet == nil || p.SwitchRes == nil {
					t.Error("cached pipeline missing simulation results")
					return
				}
			}
		}(cfg)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent RunCachedCtx failed: %v", err)
	}

	// Whatever won the last write must be a clean, loadable cache for its
	// own config. Probe with loadCached directly — a RunCachedCtx miss
	// would overwrite the file and mask which config actually won.
	pA, hitA, corruptA := loadCached(context.Background(), nl, cfgA, path)
	pB, hitB, corruptB := loadCached(context.Background(), nl, cfgB, path)
	if corruptA != "" || corruptB != "" {
		t.Fatalf("file left behind is corrupt: %q / %q", corruptA, corruptB)
	}
	if !hitA && !hitB {
		t.Fatal("file left behind is a hit for neither config")
	}
	if hitA && hitB {
		t.Fatal("one file cannot satisfy two different configs")
	}
	winner := pA
	if hitB {
		winner = pB
	}
	if winner.TestSet == nil || winner.SwitchRes == nil {
		t.Fatal("winning cache file is missing simulation results")
	}
}

// TestCacheKeyIdentity pins what participates in the result-cache key:
// result-determining fields change it, execution-only knobs do not.
func TestCacheKeyIdentity(t *testing.T) {
	cfg := DefaultConfig()
	base := CacheKey("c17", cfg)
	if base == "" || len(base) != 32 {
		t.Fatalf("malformed key %q", base)
	}
	same := cfg
	same.Workers = 7 // execution-only
	if CacheKey("c17", same) != base {
		t.Fatal("Workers must not change the cache key")
	}
	if CacheKey("c432", cfg) == base {
		t.Fatal("circuit must change the cache key")
	}
	seed := cfg
	seed.Seed++
	if CacheKey("c17", seed) == base {
		t.Fatal("seed must change the cache key")
	}
	vec := cfg
	vec.RandomVectors++
	if CacheKey("c17", vec) == base {
		t.Fatal("vector budget must change the cache key")
	}
}
