package experiments

import (
	"fmt"
	"strings"

	"defectsim/internal/dlmodel"
	"defectsim/internal/netlist"
	"defectsim/internal/textplot"
)

// SuiteRow is one circuit's summary in a benchmark-suite study.
type SuiteRow struct {
	Name        string
	Gates       int
	Faults      int
	ThetaFinal  float64
	GammaFinal  float64
	Fitted      dlmodel.Params
	ResidualPPM float64
}

// SuiteStudy runs the full pipeline over a suite of circuits — the paper's
// "although some other examples were examined, only one example is
// discussed" made concrete: R and Θmax vary with circuit structure, but
// R > 1 and Θmax < 1 persist across the suite under bridging-dominant
// statistics.
type SuiteStudy struct {
	Rows []SuiteRow
}

// RunSuite executes the pipeline for each circuit with the shared config.
func RunSuite(circuits []*netlist.Netlist, cfg Config) (*SuiteStudy, error) {
	st := &SuiteStudy{}
	for _, nl := range circuits {
		p, err := Run(nl, cfg)
		if err != nil {
			return nil, fmt.Errorf("suite: %s: %w", nl.Name, err)
		}
		f5 := Figure5(p)
		row := SuiteRow{
			Name:       nl.Name,
			Gates:      len(nl.Gates),
			Faults:     len(p.Faults.Faults),
			ThetaFinal: p.ThetaCurve(false).Final(),
			GammaFinal: p.GammaCurve().Final(),
			Fitted:     f5.Fitted,
		}
		row.ResidualPPM = 1e6 * dlmodel.Params{R: 1, ThetaMax: row.ThetaFinal}.ResidualDL(p.Yield)
		st.Rows = append(st.Rows, row)
	}
	return st, nil
}

// Render prints the suite table.
func (st *SuiteStudy) Render() string {
	var b strings.Builder
	b.WriteString("Benchmark suite (shared defect statistics, Y scaled per design)\n")
	tb := textplot.Table{Headers: []string{
		"circuit", "gates", "faults", "Θ(final)", "Γ(final)", "R(fit)", "Θmax(fit)", "residual DL",
	}}
	for _, r := range st.Rows {
		tb.AddRow(r.Name, r.Gates, r.Faults,
			fmt.Sprintf("%.4f", r.ThetaFinal), fmt.Sprintf("%.4f", r.GammaFinal),
			fmt.Sprintf("%.2f", r.Fitted.R), fmt.Sprintf("%.3f", r.Fitted.ThetaMax),
			fmt.Sprintf("%.0f ppm", r.ResidualPPM))
	}
	b.WriteString(tb.Render())
	return b.String()
}
