package experiments

import (
	"context"
	"fmt"
	"strings"

	"defectsim/internal/dlmodel"
	"defectsim/internal/netlist"
	"defectsim/internal/textplot"
)

// SuiteRow is one circuit's summary in a benchmark-suite study.
type SuiteRow struct {
	Name        string
	Gates       int
	Faults      int
	ThetaFinal  float64
	GammaFinal  float64
	Fitted      dlmodel.Params
	ResidualPPM float64
}

// SuiteStudy runs the full pipeline over a suite of circuits — the paper's
// "although some other examples were examined, only one example is
// discussed" made concrete: R and Θmax vary with circuit structure, but
// R > 1 and Θmax < 1 persist across the suite under bridging-dominant
// statistics.
type SuiteStudy struct {
	Rows []SuiteRow
}

// RunSuite executes the pipeline for each circuit with the shared config.
func RunSuite(circuits []*netlist.Netlist, cfg Config) (*SuiteStudy, error) {
	return RunSuiteCtx(context.Background(), circuits, cfg)
}

// RunSuiteCtx is RunSuite under a context, with the independent circuit
// pipelines running concurrently on a bounded worker pool (cfg.Workers;
// <= 0 selects runtime.NumCPU()). Every circuit runs the full hardened
// pipeline — deadline, stage budgets and graceful degradation apply per
// circuit — and the rows come back in input order, identical to a serial
// run. The per-circuit simulators run single-worker here: the suite's
// parallelism budget is spent across circuits, not nested inside them.
func RunSuiteCtx(ctx context.Context, circuits []*netlist.Netlist, cfg Config) (*SuiteStudy, error) {
	inner := cfg
	inner.Workers = 1
	// A tracer records one pipeline's span tree; sharing it across
	// concurrent circuits would interleave them, so the suite runs
	// untraced per circuit.
	inner.Obs = nil
	rows := make([]SuiteRow, len(circuits))
	err := forEach(ctx, cfg.Workers, len(circuits), func(i int) error {
		nl := circuits[i]
		p, err := RunCtx(ctx, nl, inner)
		if err != nil {
			return fmt.Errorf("suite: %s: %w", nl.Name, err)
		}
		f5 := Figure5(p)
		row := SuiteRow{
			Name:       nl.Name,
			Gates:      len(nl.Gates),
			Faults:     len(p.Faults.Faults),
			ThetaFinal: p.ThetaCurve(false).Final(),
			GammaFinal: p.GammaCurve().Final(),
			Fitted:     f5.Fitted,
		}
		row.ResidualPPM = 1e6 * dlmodel.Params{R: 1, ThetaMax: row.ThetaFinal}.ResidualDL(p.Yield)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SuiteStudy{Rows: rows}, nil
}

// Render prints the suite table.
func (st *SuiteStudy) Render() string {
	var b strings.Builder
	b.WriteString("Benchmark suite (shared defect statistics, Y scaled per design)\n")
	tb := textplot.Table{Headers: []string{
		"circuit", "gates", "faults", "Θ(final)", "Γ(final)", "R(fit)", "Θmax(fit)", "residual DL",
	}}
	for _, r := range st.Rows {
		tb.AddRow(r.Name, r.Gates, r.Faults,
			fmt.Sprintf("%.4f", r.ThetaFinal), fmt.Sprintf("%.4f", r.GammaFinal),
			fmt.Sprintf("%.2f", r.Fitted.R), fmt.Sprintf("%.3f", r.Fitted.ThetaMax),
			fmt.Sprintf("%.0f ppm", r.ResidualPPM))
	}
	b.WriteString(tb.Render())
	return b.String()
}
