package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"defectsim/internal/netlist"
)

// TestForEachRunsEveryItemOnce: the pool visits every index exactly once
// for any worker count.
func TestForEachRunsEveryItemOnce(t *testing.T) {
	const n = 40
	for _, w := range []int{1, 3, 0, 64} {
		var visits [n]atomic.Int64
		err := forEach(context.Background(), w, n, func(i int) error {
			visits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", w, i, got)
			}
		}
	}
}

// TestForEachLowestIndexErrorWins: items are claimed in index order and
// the failure a serial run would hit first is the one reported, for every
// worker count.
func TestForEachLowestIndexErrorWins(t *testing.T) {
	err3 := errors.New("item 3")
	err7 := errors.New("item 7")
	for _, w := range []int{1, 2, 8, 0} {
		err := forEach(context.Background(), w, 10, func(i int) error {
			switch i {
			case 3:
				return err3
			case 7:
				return err7
			}
			return nil
		})
		if !errors.Is(err, err3) {
			t.Fatalf("workers=%d: err = %v, want the lowest-index failure", w, err)
		}
	}
}

// TestForEachPreCancelled: a dead context stops the pool before any item
// runs.
func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := forEach(ctx, 4, 10, func(int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d items ran on a pre-cancelled context", n)
	}
}

// TestRunStudiesOrderAndInvariance: a concurrent study run returns the
// same artifacts in the same (input) order as a serial one.
func TestRunStudiesOrderAndInvariance(t *testing.T) {
	p, err := Run(netlist.C17(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	studies := []Study{
		{"fig3", func(_ context.Context, p *Pipeline) (string, error) { return Figure3(p).Render(), nil }},
		{"fig5", func(_ context.Context, p *Pipeline) (string, error) { return Figure5(p).Render(), nil }},
		{"kinds", func(_ context.Context, p *Pipeline) (string, error) { return FaultKindBreakdown(p), nil }},
		{"lot", func(_ context.Context, p *Pipeline) (string, error) {
			return RunLotValidation(p, 2000, 7).Render(), nil
		}},
	}
	serial, err := RunStudies(context.Background(), p, studies, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(studies) {
		t.Fatalf("%d artifacts, want %d", len(serial), len(studies))
	}
	for i, s := range serial {
		if s == "" {
			t.Fatalf("study %s rendered empty", studies[i].Name)
		}
	}
	for _, w := range []int{2, 4, 0} {
		got, err := RunStudies(context.Background(), p, studies, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: study %s differs from serial run", w, studies[i].Name)
			}
		}
	}
}

// TestRunStudiesFailureNamesStudy: a failing study surfaces its name.
func TestRunStudiesFailureNamesStudy(t *testing.T) {
	p, err := Run(netlist.C17(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	studies := []Study{
		{"ok", func(context.Context, *Pipeline) (string, error) { return "fine", nil }},
		{"bad", func(context.Context, *Pipeline) (string, error) { return "", boom }},
	}
	_, err = RunStudies(context.Background(), p, studies, 2)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the study failure", err)
	}
	if !strings.Contains(err.Error(), "study bad") {
		t.Fatalf("error %q does not name the study", err)
	}
}

// TestRunSuiteConcurrentMatchesSerial: the suite study produces identical
// rows for serial and concurrent circuit execution.
func TestRunSuiteConcurrentMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-circuit pipeline suite")
	}
	circuits := []*netlist.Netlist{
		netlist.C17(),
		netlist.RippleAdder(3),
	}
	cfg := smallConfig()
	cfg.Workers = 1
	serial, err := RunSuiteCtx(context.Background(), circuits, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	conc, err := RunSuiteCtx(context.Background(), circuits, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(conc.Rows) != len(serial.Rows) {
		t.Fatalf("%d rows, want %d", len(conc.Rows), len(serial.Rows))
	}
	for i := range serial.Rows {
		if conc.Rows[i] != serial.Rows[i] {
			t.Fatalf("row %d: concurrent %+v, serial %+v", i, conc.Rows[i], serial.Rows[i])
		}
	}
	if serial.Rows[0].Name != "c17" {
		t.Fatalf("rows out of input order: %q first", serial.Rows[0].Name)
	}
}
