package experiments

import (
	"math"
	"strings"
	"testing"

	"defectsim/internal/dlmodel"
	"defectsim/internal/netlist"
)

// smallConfig keeps unit-test pipelines fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.RandomVectors = 48
	return cfg
}

func TestFigure1MatchesPaperParameters(t *testing.T) {
	f := Figure1()
	if math.Abs(f.R()-2) > 1e-12 {
		t.Fatalf("R = %g, want 2", f.R())
	}
	// T(10⁶) = 1 − 10^(−2) = 0.99 for σ_T = e³.
	last := len(f.Ks) - 1
	if math.Abs(f.Ks[last]-1e6) > 1 {
		t.Fatalf("grid must end at 10⁶, got %g", f.Ks[last])
	}
	if math.Abs(f.T[last]-0.99) > 1e-3 {
		t.Fatalf("T(1e6) = %g, want ≈0.99", f.T[last])
	}
	// Θ approaches its 0.96 ceiling faster than T approaches 1.
	for i, k := range f.Ks {
		if k < 10 {
			continue
		}
		if f.Theta[i]/f.ThetaMax <= f.T[i]-1e-12 {
			t.Fatalf("Θ/Θmax must lead T at k=%g", k)
		}
	}
	if !strings.Contains(f.Render(), "Fig.1") {
		t.Fatal("render")
	}
}

func TestFigure2Shape(t *testing.T) {
	f := Figure2()
	// The proposed curve must lie below W-B through mid coverage and end
	// at the positive residual defect level while W-B ends at zero.
	for i, tt := range f.Ts {
		if tt > 0.2 && tt < 0.9 && f.Model[i] >= f.WB[i] {
			t.Fatalf("model must undercut W-B at T=%.2f", tt)
		}
	}
	last := len(f.Ts) - 1
	if f.WB[last] != 0 || f.Model[last] <= 0 {
		t.Fatalf("endpoint: WB=%g model=%g", f.WB[last], f.Model[last])
	}
	want := dlmodel.Params{R: 2, ThetaMax: 0.96}.ResidualDL(0.75)
	if math.Abs(f.Model[last]-want) > 1e-12 {
		t.Fatalf("residual endpoint %g, want %g", f.Model[last], want)
	}
	if !strings.Contains(f.Render(), "Williams") {
		t.Fatal("render")
	}
}

func TestExamples(t *testing.T) {
	e1, err := RunExample1()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e1.RequiredT-0.977) > 1e-3 {
		t.Fatalf("Example 1 T = %.4f, want ≈0.977", e1.RequiredT)
	}
	if math.Abs(e1.WilliamsBrownT-0.9997) > 1e-4 {
		t.Fatalf("Example 1 W-B T = %.5f, want ≈0.9997", e1.WilliamsBrownT)
	}
	e2 := RunExample2()
	if e2.DL < 2.8e-3 || e2.DL > 2.95e-3 {
		t.Fatalf("Example 2 DL = %g, want ≈2.87e-3", e2.DL)
	}
	if e2.WB != 0 {
		t.Fatal("W-B must predict zero at full coverage")
	}
	if !strings.Contains(e1.Render(), "97.7") || !strings.Contains(e2.Render(), "ppm") {
		t.Fatal("render")
	}
}

func TestPipelineSmallCircuit(t *testing.T) {
	p, err := Run(netlist.RippleAdder(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Yield-0.75) > 1e-9 {
		t.Fatalf("yield scaled to %g", p.Yield)
	}
	tc := p.TCurve()
	if tc.Final() < 0.99 {
		t.Fatalf("ATPG set must cover testable stuck-at faults, T(final)=%g", tc.Final())
	}
	th := p.ThetaCurve(false)
	ga := p.GammaCurve()
	if th.Final() <= 0 || th.Final() >= 1 {
		t.Fatalf("Θ(final) = %g out of (0,1)", th.Final())
	}
	if ga.Final() <= 0 || ga.Final() >= 1 {
		t.Fatalf("Γ(final) = %g", ga.Final())
	}
	// Bridging-dominant statistics: weighted coverage must exceed
	// unweighted (the heavy bridge faults are the detected ones).
	if th.Final() <= ga.Final() {
		t.Fatalf("Θ (%.3f) must exceed Γ (%.3f) under bridging-dominant stats",
			th.Final(), ga.Final())
	}
	if !strings.Contains(p.Summary(), "test set") {
		t.Fatal("report")
	}
}

func TestFigure3456OnSmallCircuit(t *testing.T) {
	p, err := Run(netlist.RippleAdder(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	f3 := Figure3(p)
	if f3.Hist.N() != len(p.Faults.Faults) {
		t.Fatal("histogram must bin every fault")
	}
	if f3.Summary.DispersionDecades < 1.5 {
		t.Fatalf("weight dispersion %.2f decades too small", f3.Summary.DispersionDecades)
	}

	f4 := Figure4(p)
	if f4.SigmaT <= 1 || f4.SigmaTheta <= 1 || f4.SigmaGamma <= 1 {
		t.Fatalf("susceptibilities must exceed 1: %+v", f4)
	}
	if f4.R <= 0 {
		t.Fatalf("R = %.2f must be positive", f4.R)
	}

	f5 := Figure5(p)
	if err := f5.Fitted.Validate(); err != nil {
		t.Fatal(err)
	}
	if f5.Fitted.ThetaMax >= 0.995 {
		t.Fatalf("fitted Θmax = %.4f must reflect the coverage ceiling", f5.Fitted.ThetaMax)
	}

	f6 := Figure6(p)
	if f6.MaxDeviation() <= 1 {
		t.Fatal("unweighted prediction must deviate")
	}
	for _, s := range []string{f3.Render(), f4.Render(), f5.Render(), f6.Render()} {
		if s == "" {
			t.Fatal("empty render")
		}
	}
}

func TestAblationsOnSmallCircuit(t *testing.T) {
	p, err := Run(netlist.RippleAdder(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := RunAgrawalComparison(p)
	if a.N < 1 {
		t.Fatalf("fitted n = %g", a.N)
	}
	if a.RMSLogProp > a.RMSLogA+1e-9 {
		t.Fatalf("proposed model (%.3f) must fit at least as well as Agrawal (%.3f)",
			a.RMSLogProp, a.RMSLogA)
	}
	i := RunIDDQAblation(p)
	if i.ThetaIDDQ < i.ThetaVoltage {
		t.Fatal("IDDQ cannot lower the coverage ceiling")
	}
	if i.ResidualI > i.ResidualV {
		t.Fatal("IDDQ cannot raise the residual defect level")
	}
	if a.Render() == "" || i.Render() == "" {
		t.Fatal("render")
	}
}

// TestC432ClassHeadline reproduces the paper's headline claims on the
// c432-class benchmark. It is the slowest test in the suite (~15 s); skip
// with -short.
func TestC432ClassHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full c432-class pipeline is slow")
	}
	p, err := Run(netlist.C432Class(1994), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f4 := Figure4(p)
	// The realistic weighted set must be more susceptible (faster-covered)
	// than the stuck-at set: σ_Θ < σ_T, i.e. R > 1 (paper §4: bridging
	// faults dominate the weight and are easier to detect).
	if f4.SigmaTheta >= f4.SigmaT {
		t.Fatalf("σ_Θ=e^%.2f must be below σ_T=e^%.2f",
			math.Log(f4.SigmaTheta), math.Log(f4.SigmaT))
	}
	if f4.R <= 1 {
		t.Fatalf("R = %.2f must exceed 1", f4.R)
	}
	// Γ saturates below T's final coverage (opens are harder to detect).
	if f4.Gamma.Final() >= f4.T.Final() {
		t.Fatalf("Γ(final)=%.3f must stay below T(final)=%.3f", f4.Gamma.Final(), f4.T.Final())
	}
	f5 := Figure5(p)
	if f5.Fitted.R <= 1 {
		t.Fatalf("fitted R = %.2f must exceed 1", f5.Fitted.R)
	}
	if f5.Fitted.ThetaMax >= 0.99 || f5.Fitted.ThetaMax < 0.5 {
		t.Fatalf("fitted Θmax = %.3f implausible", f5.Fitted.ThetaMax)
	}
	if dev := f5.MaxWBDeviation(); dev < 1.05 {
		t.Fatalf("W-B overestimation %.2f× too small for the observed concavity", dev)
	}
	// The curve must cross back above Williams–Brown at full stuck-at
	// coverage: the residual defect level (W-B predicts zero there).
	last := f5.Points[len(f5.Points)-1]
	if last.T < 0.999 || last.DL <= 0 {
		t.Fatalf("endpoint (T=%.4f, DL=%g) must show a positive residual DL", last.T, last.DL)
	}
	f3 := Figure3(p)
	if f3.Summary.DispersionDecades < 2 {
		t.Fatalf("weight dispersion %.2f decades (paper: ~3)", f3.Summary.DispersionDecades)
	}
}
