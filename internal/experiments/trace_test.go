package experiments

import (
	"path/filepath"
	"testing"

	"defectsim/internal/netlist"
	"defectsim/internal/obs"
)

func TestRunTraced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RandomVectors = 16
	cfg.Obs = obs.New()
	p, err := Run(netlist.C17(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Report == nil {
		t.Fatal("traced run must populate Pipeline.Report")
	}
	if len(p.Report.Stages) != 1 || p.Report.Stages[0].Name != "pipeline" {
		t.Fatalf("want a single pipeline root stage, got %+v", p.Report.Stages)
	}
	root := p.Report.Stages[0]
	wantStages := []string{"layout", "lvs", "extract", "scale-weights", "transistor-map", "stuckat-collapse", "atpg", "switch-sim", "curves"}
	if len(root.Children) != len(wantStages) {
		t.Fatalf("stage count = %d, want %d: %+v", len(root.Children), len(wantStages), root.Children)
	}
	var sum int64
	for i, c := range root.Children {
		if c.Name != wantStages[i] {
			t.Fatalf("stage %d = %q, want %q", i, c.Name, wantStages[i])
		}
		sum += c.DurationNS
	}
	// The stages cover the whole run: their durations must account for
	// (almost) all of the root's wall time, and never exceed it.
	if sum > root.DurationNS {
		t.Fatalf("stage sum %d exceeds pipeline total %d", sum, root.DurationNS)
	}
	if float64(sum) < 0.5*float64(root.DurationNS) {
		t.Fatalf("stage sum %d covers under half the pipeline total %d", sum, root.DurationNS)
	}
	// Metrics that any successful run must have produced.
	counters := map[string]int64{}
	for _, c := range p.Report.Counters {
		counters[c.Name] = c.Value
	}
	if counters["extract_bridge_faults"] == 0 {
		t.Fatal("extraction recorded no bridge faults")
	}
	if counters["pipeline_vectors"] != int64(len(p.TestSet.Patterns)) {
		t.Fatalf("pipeline_vectors = %d, want %d", counters["pipeline_vectors"], len(p.TestSet.Patterns))
	}
	if counters["swsim_vectors_applied"] == 0 {
		t.Fatal("switch-sim recorded no vectors")
	}
	gauges := map[string]float64{}
	for _, g := range p.Report.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["pipeline_yield"] != p.Yield {
		t.Fatalf("pipeline_yield gauge = %g, want %g", gauges["pipeline_yield"], p.Yield)
	}
}

func TestRunUntracedHasNoReport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RandomVectors = 16
	p, err := Run(netlist.C17(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Report != nil {
		t.Fatal("untraced run must leave Pipeline.Report nil")
	}
}

func TestRunCachedTracedHit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	cfg := DefaultConfig()
	cfg.RandomVectors = 16

	// Prime the cache untraced.
	if _, hit, err := RunCached(netlist.C17(), cfg, path); err != nil || hit {
		t.Fatalf("prime: hit=%v err=%v", hit, err)
	}

	// A traced rerun must hit and still deliver a report flagged as such.
	cfg.Obs = obs.New()
	p, hit, err := RunCached(netlist.C17(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second run should hit the cache")
	}
	if p.Report == nil || !p.Report.CacheHit {
		t.Fatalf("cache hit must produce a CacheHit-flagged report, got %+v", p.Report)
	}
	if len(p.Report.Stages) != 1 || p.Report.Stages[0].Name != "cache-load" {
		t.Fatalf("hit report should have a cache-load root, got %+v", p.Report.Stages)
	}
	counters := map[string]int64{}
	for _, c := range p.Report.Counters {
		counters[c.Name] = c.Value
	}
	if counters["pipeline_cache_hits"] != 1 {
		t.Fatalf("pipeline_cache_hits = %d, want 1", counters["pipeline_cache_hits"])
	}
}
