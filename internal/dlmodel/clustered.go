package dlmodel

import "math"

// Clustered returns the defect level under negative-binomial (clustered)
// defect statistics — the generalization of the weighted Poisson model
// (eq. 3) to Stapper-clustered defects.
//
// With the fault count N compound-Poisson over a Gamma-distributed rate
// (mean λ, clustering parameter α) and each present fault escaping the
// test with probability (1−Θ) of staying undetected, a die ships defective
// iff it carries at least one fault and none of its faults is detected:
//
//	DL = 1 − P(N = 0) / P(no detected fault)
//	   = 1 − [(α + λΘ) / (α + λ)]^α
//
// As α → ∞ this recovers 1 − e^{−λ(1−Θ)} = 1 − Y^{1−Θ}, the Poisson form.
// Clustering (small α) lowers the defect level at equal λ and Θ: defective
// dies tend to carry several faults, so catching any one of them removes
// the die.
func Clustered(lambda, alpha, theta float64) float64 {
	if lambda < 0 {
		panic("dlmodel: negative defect rate")
	}
	if alpha <= 0 {
		panic("dlmodel: clustering parameter must be positive")
	}
	if theta < 0 || theta > 1 {
		panic("dlmodel: coverage out of [0,1]")
	}
	return 1 - math.Pow((alpha+lambda*theta)/(alpha+lambda), alpha)
}

// ClusteredFromYield expresses Clustered through the negative-binomial
// yield y = (1 + λ/α)^{−α} instead of the raw rate λ.
func ClusteredFromYield(y, alpha, theta float64) float64 {
	checkY(y)
	if alpha <= 0 {
		panic("dlmodel: clustering parameter must be positive")
	}
	lambda := alpha * (math.Pow(y, -1/alpha) - 1)
	return Clustered(lambda, alpha, theta)
}
