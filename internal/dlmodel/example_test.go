package dlmodel_test

import (
	"fmt"

	"defectsim/internal/dlmodel"
)

// The paper's worked Example 1: how much stuck-at coverage does a 100 ppm
// quality target need at 75 % yield when the realistic faults are easier
// to detect than stuck-at faults (R = 2.1)?
func ExampleParams_RequiredT() {
	p := dlmodel.Params{R: 2.1, ThetaMax: 1}
	t, err := p.RequiredT(0.75, 100e-6)
	if err != nil {
		panic(err)
	}
	fmt.Printf("proposed model: T = %.2f%%\n", 100*t)
	fmt.Printf("Williams-Brown: T = %.2f%%\n", 100*dlmodel.WilliamsBrownRequiredT(0.75, 100e-6))
	// Output:
	// proposed model: T = 97.75%
	// Williams-Brown: T = 99.97%
}

// The paper's worked Example 2: even at 100 % stuck-at coverage, an
// incomplete detection technique (Θmax = 0.99) leaves a residual defect
// level that Williams–Brown cannot express.
func ExampleParams_ResidualDL() {
	p := dlmodel.Params{R: 1, ThetaMax: 0.99}
	fmt.Printf("residual DL: %.0f ppm\n", 1e6*p.ResidualDL(0.75))
	fmt.Printf("Williams-Brown at T=1: %.0f ppm\n", 1e6*dlmodel.WilliamsBrown(0.75, 1))
	// Output:
	// residual DL: 2873 ppm
	// Williams-Brown at T=1: 0 ppm
}

// With R = 1 and Θmax = 1 the proposed model collapses to the classic
// Williams–Brown formula.
func ExampleWilliamsBrownParams() {
	p := dlmodel.WilliamsBrownParams()
	fmt.Printf("%.6f\n", p.DL(0.75, 0.9))
	fmt.Printf("%.6f\n", dlmodel.WilliamsBrown(0.75, 0.9))
	// Output:
	// 0.028358
	// 0.028358
}
