// Package dlmodel implements the defect-level models compared in the
// paper:
//
//	Williams–Brown (eq. 1):   DL = 1 − Y^(1−T)
//	Agrawal et al. (eq. 2):   DL = (1−T)(1−Y)e^{−(n−1)T} /
//	                               (Y + (1−T)(1−Y)e^{−(n−1)T})
//	Weighted realistic (3):   DL = 1 − Y^(1−Θ)
//	Proposed model (eq. 11):  DL = 1 − Y^(1−Θmax·(1−(1−T)^R))
//
// plus the inversions used by the worked examples (required coverage for a
// target DL) and the residual defect level 1 − Y^(1−Θmax) of an incomplete
// detection technique.
package dlmodel

import (
	"fmt"
	"math"
)

// WilliamsBrown returns DL = 1 − Y^(1−T) (eq. 1).
func WilliamsBrown(y, t float64) float64 {
	checkYT(y, t)
	return 1 - math.Pow(y, 1-t)
}

// WilliamsBrownRequiredT inverts eq. 1: the stuck-at coverage needed to
// reach defect level dl at yield y.
func WilliamsBrownRequiredT(y, dl float64) float64 {
	checkY(y)
	if dl <= 0 || dl >= 1 {
		panic("dlmodel: target DL must be in (0,1)")
	}
	return 1 - math.Log(1-dl)/math.Log(y)
}

// Agrawal returns the Agrawal–Seth–Agrawal defect level (eq. 2) with n the
// average number of faults on a faulty chip.
func Agrawal(y, t, n float64) float64 {
	checkYT(y, t)
	if n < 1 {
		panic("dlmodel: Agrawal n must be ≥ 1")
	}
	b := (1 - t) * (1 - y) * math.Exp(-(n-1)*t)
	return b / (y + b)
}

// Weighted returns DL = 1 − Y^(1−Θ) (eq. 3), the Williams–Brown form over
// the weighted realistic fault coverage Θ.
func Weighted(y, theta float64) float64 {
	checkYT(y, theta)
	return 1 - math.Pow(y, 1-theta)
}

// Params carries the two parameters the proposed model adds over
// Williams–Brown.
type Params struct {
	// R is the susceptibility ratio ln(σ_T)/ln(σ_Θ) (eq. 10): R > 1 when
	// the dominant realistic faults (bridges) are easier to detect than the
	// average stuck-at fault.
	R float64
	// ThetaMax is the maximum realistic fault coverage achievable by the
	// detection technique (< 1 for static voltage testing).
	ThetaMax float64
}

// Validate checks the parameter domain.
func (p Params) Validate() error {
	if p.R <= 0 {
		return fmt.Errorf("dlmodel: R = %g must be positive", p.R)
	}
	if p.ThetaMax <= 0 || p.ThetaMax > 1 {
		return fmt.Errorf("dlmodel: Θmax = %g must be in (0,1]", p.ThetaMax)
	}
	return nil
}

// ThetaFromT returns eq. 9: Θ(T) = Θmax·(1 − (1−T)^R), the realistic
// coverage reached when random testing has brought the stuck-at coverage to
// T.
func (p Params) ThetaFromT(t float64) float64 {
	if t < 0 || t > 1 {
		panic("dlmodel: coverage out of [0,1]")
	}
	return p.ThetaMax * (1 - math.Pow(1-t, p.R))
}

// DL returns the proposed model (eq. 11): DL(T) = 1 − Y^(1−Θ(T)).
func (p Params) DL(y, t float64) float64 {
	checkY(y)
	return 1 - math.Pow(y, 1-p.ThetaFromT(t))
}

// RequiredT inverts eq. 11: the stuck-at coverage needed for defect level
// dl at yield y (the paper's Example 1). It returns an error when the
// target lies below the model's residual defect level.
func (p Params) RequiredT(y, dl float64) (float64, error) {
	checkY(y)
	if dl <= 0 || dl >= 1 {
		return 0, fmt.Errorf("dlmodel: target DL %g out of (0,1)", dl)
	}
	if res := p.ResidualDL(y); dl < res {
		return 0, fmt.Errorf("dlmodel: target DL %.3g below residual defect level %.3g (Θmax=%g)",
			dl, res, p.ThetaMax)
	}
	// 1 − Y^(1−Θ) = dl  ⇒  Θ = 1 − ln(1−dl)/ln(Y)
	theta := 1 - math.Log(1-dl)/math.Log(y)
	// Θ = Θmax(1−(1−T)^R)  ⇒  T = 1 − (1 − Θ/Θmax)^(1/R)
	frac := 1 - theta/p.ThetaMax
	if frac < 0 {
		frac = 0
	}
	return 1 - math.Pow(frac, 1/p.R), nil
}

// ResidualDL returns 1 − Y^(1−Θmax): the defect level that remains at 100%
// stuck-at coverage, attributable to faults the detection technique cannot
// cover (the paper's Example 2).
func (p Params) ResidualDL(y float64) float64 {
	checkY(y)
	return 1 - math.Pow(y, 1-p.ThetaMax)
}

// WilliamsBrownParams returns the degenerate parameters (R = 1, Θmax = 1)
// under which the proposed model reduces exactly to eq. 1.
func WilliamsBrownParams() Params { return Params{R: 1, ThetaMax: 1} }

func checkY(y float64) {
	if y <= 0 || y >= 1 {
		panic(fmt.Sprintf("dlmodel: yield %g must be in (0,1)", y))
	}
}

func checkYT(y, t float64) {
	checkY(y)
	if t < 0 || t > 1 {
		panic(fmt.Sprintf("dlmodel: coverage %g must be in [0,1]", t))
	}
}
