package dlmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClusteredRecoversPoisson(t *testing.T) {
	lambda, theta := 0.288, 0.8
	poisson := 1 - math.Exp(-lambda*(1-theta))
	if d := math.Abs(Clustered(lambda, 1e9, theta) - poisson); d > 1e-6 {
		t.Fatalf("α→∞ must recover Poisson (Δ=%g)", d)
	}
	// And ClusteredFromYield agrees with Weighted in the same limit.
	y := math.Exp(-lambda)
	if d := math.Abs(ClusteredFromYield(y, 1e9, theta) - Weighted(y, theta)); d > 1e-6 {
		t.Fatalf("yield form mismatch (Δ=%g)", d)
	}
}

func TestClusteredEndpoints(t *testing.T) {
	lambda, alpha := 0.5, 2.0
	if got := Clustered(lambda, alpha, 1); got != 0 {
		t.Fatalf("full coverage must ship zero defects, got %g", got)
	}
	wantAt0 := 1 - math.Pow(alpha/(alpha+lambda), alpha) // 1 − yield
	if got := Clustered(lambda, alpha, 0); math.Abs(got-wantAt0) > 1e-12 {
		t.Fatalf("zero coverage DL = %g, want 1−Y = %g", got, wantAt0)
	}
	if Clustered(0, alpha, 0.5) != 0 {
		t.Fatal("no defects, no defect level")
	}
}

func TestClusteringLowersDL(t *testing.T) {
	// At equal λ and Θ, clustering concentrates faults on fewer dies, so
	// detecting any one fault scraps the die: DL falls as α shrinks.
	lambda, theta := 0.3, 0.7
	prev := -1.0
	for _, alpha := range []float64{0.25, 0.5, 1, 2, 8, 64} {
		dl := Clustered(lambda, alpha, theta)
		if dl <= prev {
			t.Fatalf("DL must increase with α (toward Poisson): α=%g dl=%g prev=%g",
				alpha, dl, prev)
		}
		prev = dl
	}
}

func TestClusteredMonotoneInTheta(t *testing.T) {
	f := func(lRaw, aRaw, t1Raw, t2Raw uint16) bool {
		lambda := float64(lRaw) / 10000
		alpha := 0.1 + float64(aRaw)/1000
		t1 := float64(t1Raw) / 65535
		t2 := float64(t2Raw) / 65535
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return Clustered(lambda, alpha, t1) >= Clustered(lambda, alpha, t2)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestClusteredAgainstSimulation validates the closed form against a direct
// Monte-Carlo of the compound Poisson–Gamma process.
func TestClusteredAgainstSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	lambda, alpha, theta := 0.6, 1.5, 0.75
	const dies = 400000
	bad := 0
	shippedBad := 0
	for d := 0; d < dies; d++ {
		// Gamma(α, λ/α) rate via sum of exponentials is only exact for
		// integer α; use Marsaglia–Tsang for general shape.
		rate := gammaSample(rng, alpha) * lambda / alpha
		n := poissonSample(rng, rate)
		if n == 0 {
			continue
		}
		bad++
		detected := false
		for i := 0; i < n; i++ {
			if rng.Float64() < theta {
				detected = true
				break
			}
		}
		if !detected {
			shippedBad++
		}
	}
	// DL = shipped bad / shipped total = shippedBad / (dies - detectedDies).
	shippedTotal := dies - (bad - shippedBad)
	got := float64(shippedBad) / float64(shippedTotal)
	want := Clustered(lambda, alpha, theta)
	if math.Abs(got-want) > 0.004 {
		t.Fatalf("Monte-Carlo DL = %.5f, closed form %.5f", got, want)
	}
}

func gammaSample(rng *rand.Rand, shape float64) float64 {
	// Marsaglia–Tsang; shape ≥ 1 branch plus boost for shape < 1.
	if shape < 1 {
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

func poissonSample(rng *rand.Rand, rate float64) int {
	l := math.Exp(-rate)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func TestClusteredPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("negative lambda", func() { Clustered(-1, 1, 0.5) })
	mustPanic("alpha 0", func() { Clustered(1, 0, 0.5) })
	mustPanic("theta 2", func() { Clustered(1, 1, 2) })
	mustPanic("bad yield", func() { ClusteredFromYield(0, 1, 0.5) })
	mustPanic("bad alpha", func() { ClusteredFromYield(0.5, 0, 0.5) })
}
