package dlmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWilliamsBrownEndpoints(t *testing.T) {
	if got := WilliamsBrown(0.75, 1); got != 0 {
		t.Fatalf("DL at T=1 must be 0, got %g", got)
	}
	if got := WilliamsBrown(0.75, 0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("DL at T=0 must be 1−Y, got %g", got)
	}
}

func TestWilliamsBrownPaperValue(t *testing.T) {
	// Example 1's Williams–Brown comparison: Y = 0.75, DL target 100 ppm ⇒
	// T = 99.97%.
	tReq := WilliamsBrownRequiredT(0.75, 100e-6)
	if math.Abs(tReq-0.9997) > 5e-5 {
		t.Fatalf("W-B required T = %.5f, paper says ≈0.9997", tReq)
	}
	// And the inversion round-trips.
	if dl := WilliamsBrown(0.75, tReq); math.Abs(dl-100e-6) > 1e-9 {
		t.Fatalf("round trip DL = %g", dl)
	}
}

func TestExample1RequiredCoverage(t *testing.T) {
	// Paper §2 Example 1: Y = 0.75, Θmax = 1, R = 2.1, DL = 100 ppm ⇒
	// T ≈ 97.7% (printed as "97:7%").
	p := Params{R: 2.1, ThetaMax: 1}
	tReq, err := p.RequiredT(0.75, 100e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tReq-0.977) > 1e-3 {
		t.Fatalf("Example 1: required T = %.4f, paper says ≈0.977", tReq)
	}
	// Round trip.
	if dl := p.DL(0.75, tReq); math.Abs(dl-100e-6) > 1e-9 {
		t.Fatalf("round trip DL = %g", dl)
	}
}

func TestExample2ResidualDL(t *testing.T) {
	// Paper §2 Example 2: Y = 0.75, T = 100%, Θmax = 0.99, R = 1 ⇒
	// DL = 1 − 0.75^0.01 ≈ 2873 ppm (the scan prints "2279"; the formula
	// gives 2.87e-3). Williams–Brown would predict zero.
	p := Params{R: 1, ThetaMax: 0.99}
	dl := p.DL(0.75, 1)
	want := 1 - math.Pow(0.75, 0.01)
	if math.Abs(dl-want) > 1e-12 {
		t.Fatalf("Example 2 DL = %g, want %g", dl, want)
	}
	if dl < 2.8e-3 || dl > 2.95e-3 {
		t.Fatalf("Example 2 DL = %g, expected ≈2.87e-3", dl)
	}
	if dl2 := p.ResidualDL(0.75); math.Abs(dl-dl2) > 1e-12 {
		t.Fatal("residual DL must equal DL at full coverage")
	}
	if WilliamsBrown(0.75, 1) != 0 {
		t.Fatal("W-B predicts zero at full coverage")
	}
}

func TestReducesToWilliamsBrown(t *testing.T) {
	p := WilliamsBrownParams()
	for _, y := range []float64{0.3, 0.75, 0.95} {
		for tt := 0.0; tt <= 1.0; tt += 0.05 {
			if d := math.Abs(p.DL(y, tt) - WilliamsBrown(y, tt)); d > 1e-12 {
				t.Fatalf("R=1,Θmax=1 must reduce to W-B (y=%g t=%g, Δ=%g)", y, tt, d)
			}
		}
	}
}

func TestProposedBelowWilliamsBrown(t *testing.T) {
	// With R > 1 and Θmax slightly below 1, the proposed curve lies below
	// W-B through the mid-coverage range (the observed concavity) and
	// crosses above near T = 1 (residual defect level).
	p := Params{R: 2, ThetaMax: 0.96}
	y := 0.75
	for _, tt := range []float64{0.2, 0.4, 0.6, 0.8} {
		if p.DL(y, tt) >= WilliamsBrown(y, tt) {
			t.Fatalf("at T=%g the proposed model must lie below W-B", tt)
		}
	}
	if p.DL(y, 1) <= WilliamsBrown(y, 1) {
		t.Fatal("at T=1 the residual defect level must exceed W-B's zero")
	}
}

func TestThetaFromT(t *testing.T) {
	p := Params{R: 2, ThetaMax: 0.96}
	if got := p.ThetaFromT(0); got != 0 {
		t.Fatalf("Θ(0) = %g", got)
	}
	if got := p.ThetaFromT(1); math.Abs(got-0.96) > 1e-12 {
		t.Fatalf("Θ(1) = %g, want Θmax", got)
	}
	// R > 1 ⇒ Θ(T) rises faster than T (scaled): Θ(0.5)/Θmax > 0.5.
	if p.ThetaFromT(0.5)/p.ThetaMax <= 0.5 {
		t.Fatal("with R>1, Θ must converge faster than T")
	}
}

func TestAgrawalProperties(t *testing.T) {
	y := 0.75
	// n = 1 at T = 0 gives (1-Y)/(Y+(1-Y)) = 1-Y.
	if got := Agrawal(y, 0, 1); math.Abs(got-(1-y)) > 1e-12 {
		t.Fatalf("Agrawal(T=0) = %g, want %g", got, 1-y)
	}
	if got := Agrawal(y, 1, 3); got != 0 {
		t.Fatalf("Agrawal(T=1) = %g, want 0", got)
	}
	// Larger n ⇒ faster DL drop at mid coverage.
	if Agrawal(y, 0.5, 5) >= Agrawal(y, 0.5, 1) {
		t.Fatal("larger n must lower mid-coverage DL")
	}
}

func TestMonotonicityProperties(t *testing.T) {
	// DL decreases in T; DL decreases as yield rises.
	f := func(rRaw, mRaw, yRaw, t1Raw, t2Raw uint16) bool {
		p := Params{
			R:        0.2 + 4*float64(rRaw)/65535,
			ThetaMax: 0.05 + 0.95*float64(mRaw)/65535,
		}
		y := 0.05 + 0.9*float64(yRaw)/65535
		t1 := float64(t1Raw) / 65535
		t2 := float64(t2Raw) / 65535
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return p.DL(y, t1) >= p.DL(y, t2)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRequiredTErrors(t *testing.T) {
	p := Params{R: 1, ThetaMax: 0.9}
	// Target below the residual level is unreachable.
	if _, err := p.RequiredT(0.75, 1e-6); err == nil {
		t.Fatal("target below residual DL must error")
	}
	if _, err := p.RequiredT(0.75, 0); err == nil {
		t.Fatal("DL=0 must error")
	}
	if _, err := p.RequiredT(0.75, p.ResidualDL(0.75)*1.5); err != nil {
		t.Fatalf("reachable target must succeed: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{{R: 0, ThetaMax: 0.9}, {R: -1, ThetaMax: 0.9},
		{R: 1, ThetaMax: 0}, {R: 1, ThetaMax: 1.1}}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("Params %+v must be invalid", p)
		}
	}
	if (Params{R: 2, ThetaMax: 0.96}).Validate() != nil {
		t.Fatal("valid params rejected")
	}
}

func TestPanicsOnDomainErrors(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("yield 0", func() { WilliamsBrown(0, 0.5) })
	mustPanic("yield 1", func() { WilliamsBrown(1, 0.5) })
	mustPanic("coverage -1", func() { WilliamsBrown(0.5, -1) })
	mustPanic("agrawal n<1", func() { Agrawal(0.5, 0.5, 0.5) })
	mustPanic("theta domain", func() { (Params{R: 1, ThetaMax: 1}).ThetaFromT(2) })
}
